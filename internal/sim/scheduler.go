package sim

import (
	"fmt"
	"sync"

	"goat/internal/fault"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// stopSignal is the sentinel panic value used to unwind abandoned
// goroutines when the scheduler stops the world.
type stopSignal struct{}

// Scheduler is the virtual runtime: it owns all simulated goroutines and
// hands the single logical processor from one to the next. Exactly one
// simulated goroutine runs at any moment (strict ping-pong with the
// scheduler loop), so all scheduler and primitive state is mutated without
// locks and every run is deterministic for a fixed seed.
type Scheduler struct {
	opts Options
	prng prng
	dec  decider

	// gs is the goroutine arena: index i holds the G with ID i+1 (IDs are
	// dense, allocated from 1 in creation order). Only the first ng
	// entries belong to the current run; the rest are recycled structs
	// kept warm for the next one.
	gs      []*G
	ng      int
	runq    []*G
	current *G

	handoff chan struct{} // running goroutine -> scheduler: "I left the processor"

	clock     int64 // logical timestamp source for trace events
	now       int64 // virtual time (nanoseconds) for timers
	steps     int
	ops       int // total CU handler invocations (op budget accounting)
	sliceOps  int // handler invocations since the last dispatch
	yieldLeft int

	timers   timerHeap
	timerSeq int64

	ect      *trace.Trace
	sinks    []trace.Sink  // all sinks (Close order)
	live     []trace.Sink  // per-event delivery (batching off, or trace.Unbatched)
	batched  []trace.Sink  // block delivery via the emission batch
	batch    []trace.Event // pending sink delivery (NoTrace runs only; else the ECT tail is the block)
	batchCap int           // block size; 0 disables batching
	flushed  int           // events of s.ect already delivered to batched sinks
	stoppers []trace.Stopper
	stopArr  [4]trace.Stopper // inline backing for stoppers (alloc-free)
	stopReq  bool             // a sink requested an early stop

	nextRes trace.ResID

	budget    int // current step budget (maxSteps, or drain extension)
	mainEnded bool
	stopping  bool
	panicked  bool
	panicVal  any
	panicG    trace.GoID

	yieldAt map[int64]bool       // systematic mode: op indices that force a yield
	wakeAt  map[int64]trace.GoID // systematic mode: op indices with a targeted wake

	opRunnable []int32        // per-op other-runnable counts (Options.RecordRunnable)
	opActor    []trace.GoID   // per-op acting goroutine (Options.RecordEnabled)
	opEnabled  [][]trace.GoID // per-op other-runnable identities (Options.RecordEnabled)
	eventOps   []int64        // per-event op attribution (Options.RecordOps)

	faults  *fault.Plan // nil unless Options.Faults is enabled
	stalled []stalledG  // goroutines held unrunnable by stall faults
	cancels []func(*G)  // injected-cancellation targets (conc contexts)
}

// schedPool recycles schedulers (and with them the goroutine arena, run
// queue and emission batch) across runs. Campaigns execute the same
// kernel millions of times; re-allocating this state per run was a
// measurable slice of the cell cost.
var schedPool sync.Pool

// newScheduler builds (or recycles) a scheduler ready to run a main
// function.
func newScheduler(opts Options) *Scheduler {
	s, _ := schedPool.Get().(*Scheduler)
	if s == nil {
		s = &Scheduler{handoff: make(chan struct{})}
	}
	s.opts = opts
	s.prng.seed(opts.Seed)
	s.ng = 0
	s.runq = s.runq[:0]
	s.current = nil
	s.clock, s.now = 0, 0
	s.steps, s.ops, s.sliceOps = 0, 0, 0
	s.yieldLeft = opts.Delays
	s.timers = s.timers[:0]
	s.timerSeq = 0
	s.stopReq = false
	s.nextRes = 0
	s.mainEnded, s.stopping, s.panicked = false, false, false
	s.panicVal, s.panicG = nil, 0

	base := decider(&s.prng)
	switch {
	case opts.Replay != nil:
		s.dec = &scriptDecider{script: opts.Replay, fallback: base}
	case opts.Record:
		s.dec = &recorder{inner: base}
	default:
		s.dec = base
	}
	if opts.YieldAt != nil {
		s.yieldAt = make(map[int64]bool, len(opts.YieldAt))
		for _, op := range opts.YieldAt {
			s.yieldAt[op] = true
		}
	}
	if opts.WakeAt != nil {
		s.wakeAt = make(map[int64]trace.GoID, len(opts.WakeAt))
		for op, g := range opts.WakeAt {
			s.wakeAt[op] = g
		}
	}
	if !opts.NoTrace {
		if opts.ECT != nil {
			opts.ECT.Reset()
			s.ect = opts.ECT
		} else {
			s.ect = trace.New(1024)
		}
		// The scheduler is the virtual-runtime producer: stamp its full
		// guarantee set so consumers of the buffered ECT see the same
		// source a live sink would. (SimSource still encodes as the
		// original GOATECT1 format — byte-identical to pre-source traces.)
		s.ect.Source = trace.SimSource
	}
	s.sinks = opts.Sinks
	s.batch = s.batch[:0]
	s.flushed = 0
	s.batchCap = opts.sinkBatch()
	s.live = s.live[:0]
	s.batched = s.batched[:0]
	for _, snk := range s.sinks {
		if _, ok := snk.(trace.Unbatched); ok || s.batchCap <= 0 {
			s.live = append(s.live, snk)
		} else {
			s.batched = append(s.batched, snk)
		}
	}
	if len(s.batched) == 0 {
		s.batchCap = 0
	}
	s.stoppers = s.stopArr[:0]
	for _, snk := range s.sinks {
		if st, ok := snk.(trace.Stopper); ok {
			s.stoppers = append(s.stoppers, st)
		}
	}
	s.faults = fault.NewPlan(opts.Seed, opts.Faults)
	s.stalled = s.stalled[:0]
	s.cancels = s.cancels[:0]
	return s
}

// release returns the scheduler to the pool once the Result has been
// built. Everything handed to the Result (trace buffer, recording
// slices, schedule log) is detached first so reuse cannot alias it.
func (s *Scheduler) release() {
	for _, g := range s.gs[:s.ng] {
		g.resume = nil
		g.wakeNote = nil
	}
	s.ect = nil
	s.sinks = nil
	s.live = s.live[:0]
	s.batched = s.batched[:0]
	s.batch = s.batch[:0]
	s.stopArr = [4]trace.Stopper{}
	s.stoppers = nil
	s.dec = nil
	s.yieldAt, s.wakeAt = nil, nil
	s.opRunnable, s.opActor, s.opEnabled, s.eventOps = nil, nil, nil, nil
	s.faults = nil
	s.stalled = s.stalled[:0]
	s.cancels = s.cancels[:0]
	s.panicVal = nil
	schedPool.Put(s)
}

// Intn draws one scheduling decision in [0, n); primitives use it for
// pseudo-random choices such as select-case picks, so the decision enters
// the recorded schedule script. Degenerate single-choice draws are not
// decisions and stay out of the script.
func (s *Scheduler) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	return s.dec.Intn(n)
}

// NewResID allocates the next resource identifier.
func (s *Scheduler) NewResID() trace.ResID {
	s.nextRes++
	return s.nextRes
}

// Now returns the current virtual time in nanoseconds.
func (s *Scheduler) Now() int64 { return s.now }

// Emit stamps an event with the next logical timestamp and appends it to
// the configured consumers: the buffered ECT immediately (unless tracing
// is disabled), the streaming sinks in fixed-size blocks (unless
// Options.SinkBatch disables batching). Blocks are flushed when full and
// at every early-stop poll, so an online detector observes exactly the
// event prefix it would have seen under per-event delivery at each
// dispatch boundary — early-stop timing and record/replay are
// batching-invariant.
func (s *Scheduler) Emit(e trace.Event) {
	if s.stopping {
		// stopWorld unwinding: defers in user code still run (unlocks,
		// once completions) but the world is already classified — their
		// side-effects must not leak into the recorded ECT or the sinks.
		return
	}
	s.clock++
	if s.ect == nil && len(s.sinks) == 0 {
		return
	}
	e.Ts = s.clock
	if s.ect != nil {
		s.ect.Append(e)
		if s.opts.RecordOps {
			// Attribute the event to the emitting goroutine's most recent
			// CU handler op (0 before its first op). Kept parallel to the
			// buffered ECT, so indexing matches Trace.Events exactly.
			var op int64
			if i := int(e.G); i >= 1 && i <= s.ng {
				op = s.gs[i-1].lastOp
			}
			s.eventOps = append(s.eventOps, op)
		}
	}
	for _, snk := range s.live {
		snk.Event(e)
	}
	if s.batchCap > 0 {
		if s.ect != nil {
			// The ECT already holds the event; the pending block is the
			// unflushed tail of its buffer — no second copy.
			if len(s.ect.Events)-s.flushed >= s.batchCap {
				s.flushSinks()
			}
		} else {
			s.batch = append(s.batch, e)
			if len(s.batch) >= s.batchCap {
				s.flushSinks()
			}
		}
	}
}

// flushSinks delivers the pending emission block to every sink, in
// order. When a run buffers an ECT the block is a window into that
// buffer (events are staged once, in Append); only NoTrace runs stage
// into the side batch. Sinks implementing trace.BatchSink take the
// whole block in one call; the backing array is the live ECT buffer or
// a reused scratch slice, so batch consumers must not retain it.
func (s *Scheduler) flushSinks() {
	if len(s.batched) == 0 {
		return
	}
	block := s.batch
	if s.ect != nil {
		block = s.ect.Events[s.flushed:]
	}
	if len(block) == 0 {
		return
	}
	for _, snk := range s.batched {
		if bs, ok := snk.(trace.BatchSink); ok {
			bs.EventBatch(block)
			continue
		}
		for i := range block {
			snk.Event(block[i])
		}
	}
	if s.ect != nil {
		s.flushed = len(s.ect.Events)
	} else {
		s.batch = s.batch[:0]
	}
}

// pollStoppers asks the early-stop sinks whether the world should halt.
// It runs at dispatch boundaries, not per event: a goroutine's current
// slice finishes undisturbed, and the stop lands before the next one.
// Pending batched events are flushed first, so the decision is made on
// the full prefix up to this boundary.
func (s *Scheduler) pollStoppers() {
	if len(s.stoppers) == 0 {
		return
	}
	s.flushSinks()
	for _, st := range s.stoppers {
		if st.StopRequested() {
			s.stopReq = true
			return
		}
	}
}

func (s *Scheduler) newG(name string, parent trace.GoID, system bool, file string, line int) *G {
	var g *G
	if s.ng < len(s.gs) {
		g = s.gs[s.ng]
		*g = G{s: s}
	} else {
		g = &G{s: s}
		s.gs = append(s.gs, g)
	}
	s.ng++
	g.id = trace.GoID(s.ng)
	g.parent = parent
	g.name = name
	g.system = system
	g.state = StateRunnable
	g.createFile = file
	g.createLine = line
	return g
}

// spawn hands a simulated goroutine to a pooled host goroutine and puts
// it on the run queue. The host waits for the first dispatch before
// emitting GoStart and calling fn (see host.go).
func (s *Scheduler) spawn(g *G, fn func(*G)) {
	h := getHost()
	g.resume = h.resume
	h.jobs <- hostJob{g: g, fn: fn}
	s.runq = append(s.runq, g)
}

// Go spawns a child application goroutine from g, emitting GoCreate with
// the call-site CU. It returns the child's handle (mainly for tests).
func (g *G) Go(name string, fn func(*G)) *G {
	file, line := Caller(1)
	return g.GoAt(name, file, line, fn)
}

// GoAt is Go with an explicit creation site (used by primitives that wrap
// goroutine creation, where the interesting CU is the wrapper's caller).
func (g *G) GoAt(name string, file string, line int, fn func(*G)) *G {
	child := g.s.newG(name, g.id, false, file, line)
	g.s.Emit(trace.Event{G: g.id, Type: trace.EvGoCreate, Peer: child.id, File: file, Line: line, Str: name})
	g.s.spawn(child, fn)
	return child
}

// GoSystem spawns a runtime-internal goroutine (timers, watchdogs) that is
// excluded from the application-level goroutine tree. Its GoCreate event is
// marked with Aux=1 so offline analysis can separate it, the way the paper
// separates runtime/tracer goroutines from application goroutines.
func (g *G) GoSystem(name string, fn func(*G)) *G {
	file, line := Caller(1)
	child := g.s.newG(name, g.id, true, file, line)
	g.s.Emit(trace.Event{G: g.id, Type: trace.EvGoCreate, Peer: child.id, Aux: 1, File: file, Line: line, Str: name})
	g.s.spawn(child, fn)
	return child
}

// leaveProcessor parks the calling goroutine until the scheduler dispatches
// it again, panicking with stopSignal if the world stopped meanwhile.
func (g *G) leaveProcessor() {
	g.s.current = nil
	g.s.handoff <- struct{}{}
	<-g.resume
	if g.s.stopping {
		panic(stopSignal{})
	}
	g.state = StateRunning
}

// Block parks g with the given reason, emitting EvGoBlock attributed to the
// CU at (file, line). It returns after some other goroutine readies g; the
// wake note attached by the waker (if any) is returned.
func (g *G) Block(reason trace.BlockReason, res trace.ResID, file string, line int) any {
	g.state = StateBlocked
	g.reason = reason
	g.wakeNote = nil
	g.s.Emit(trace.Event{G: g.id, Type: trace.EvGoBlock, Res: res, Aux: int64(reason), File: file, Line: line})
	g.leaveProcessor()
	g.reason = trace.BlockNone
	return g.wakeNote
}

// Ready moves target from blocked to runnable, emitting EvGoUnblock
// attributed to g (the unblocking action's goroutine). The note is
// delivered to the sleeper's Block return value.
func (g *G) Ready(target *G, res trace.ResID, note any) {
	if g.s.stopping {
		// Wakeups fired by unwinding defers during stopWorld must not
		// repaint settled goroutine states: the Result snapshots the world
		// as it was classified, and stopWorld resumes everyone itself.
		return
	}
	if target.state != StateBlocked {
		panic(fmt.Sprintf("sim: Ready(%v) but state is %v", target, target.state))
	}
	target.state = StateRunnable
	target.wakeNote = note
	g.s.Emit(trace.Event{G: g.id, Type: trace.EvGoUnblock, Peer: target.id, Res: res})
	g.s.runq = append(g.s.runq, target)
}

// Yield gives up the processor voluntarily (runtime.Gosched analogue).
func (g *G) Yield() {
	file, line := Caller(1)
	g.yield(trace.EvGoSched, file, line)
}

func (g *G) yield(ev trace.Type, file string, line int) {
	g.state = StateRunnable
	g.s.Emit(trace.Event{G: g.id, Type: ev, File: file, Line: line})
	if g.s.fastRedispatch() {
		// Nothing else is runnable: the scheduler loop would redispatch
		// this goroutine immediately, so skip the two rendezvous and
		// continue in place. fastRedispatch performed the loop's
		// bookkeeping, so schedules, scripts and budgets are identical.
		g.state = StateRunning
		return
	}
	g.s.runq = append(g.s.runq, g)
	g.leaveProcessor()
}

// fastRedispatch reports whether the calling (yielding) goroutine may
// keep the processor because the scheduler loop, run to its next
// dispatch, would inevitably pick it again. That is the case when the
// run queue is empty (the yielder would be its only member), no stalled
// goroutine could rejoin it, no early stop is requested once pending
// events are delivered, and the step budget allows another dispatch.
// When it returns true it has applied exactly the dispatch bookkeeping
// (step count, slice reset) the loop would have; scheduling decisions
// are untouched either way, because a single-entry run queue draws none.
func (s *Scheduler) fastRedispatch() bool {
	if len(s.runq) != 0 || len(s.stalled) != 0 || s.panicked || s.stopping {
		return false
	}
	if s.steps >= s.budget || s.ops >= s.budget*64 {
		return false
	}
	if len(s.stoppers) > 0 {
		s.pollStoppers()
		if s.stopReq {
			return false
		}
	}
	s.steps++
	s.sliceOps = 0
	return true
}

// wakeYield forces a yield at a targeted-wake op: the acting goroutine
// re-enqueues as usual, and the wake target, if currently runnable, is
// moved to the head of the run queue so it is dispatched next (under
// PickFIFO). An absent or unrunnable target degrades to a plain forced
// yield — the schedule stays deterministic either way.
func (g *G) wakeYield(target trace.GoID, file string, line int) {
	s := g.s
	for i, r := range s.runq {
		if r.id == target {
			if i > 0 {
				copy(s.runq[1:i+1], s.runq[:i])
				s.runq[0] = r
			}
			break
		}
	}
	g.yield(trace.EvGoSched, file, line)
}

// sliceOpBudget bounds how many concurrency usages one goroutine may
// execute without leaving the processor. A goroutine spinning through CU
// points (a select/default polling loop) would otherwise starve the
// scheduler forever when probabilistic preemption is disabled — this is
// the virtual runtime's analogue of Go 1.14's asynchronous preemption,
// and it is not a scheduling *decision*, so it bypasses the decider.
const sliceOpBudget = 256

// SliceOpBudget exposes the per-slice op budget: schedule analyses that
// reason about forced preempts (the systematic pruner's no-op-yield rule)
// must know when slice exhaustion can perturb a schedule.
const SliceOpBudget = sliceOpBudget

// Handler is the schedule-perturbation hook injected before every
// concurrency usage (the paper's goat.handler()). While the delay budget D
// lasts it forces a yield with probability YieldProb; independently it may
// preempt with the natural-noise probability, and unconditionally after
// the per-slice op budget.
func (g *G) Handler(file string, line int) {
	g.handler(trace.CatNone, file, line)
}

// HandlerCat is Handler with the CU's primitive category attached, so
// category-targeted faults (channel-op slowdowns) can find their points.
func (g *G) HandlerCat(cat trace.Category, file string, line int) {
	g.handler(cat, file, line)
}

func (g *G) handler(cat trace.Category, file string, line int) {
	s := g.s
	s.ops++
	s.sliceOps++
	g.lastOp = int64(s.ops)
	if s.opts.RecordRunnable {
		// The current goroutine holds the processor and is not in runq,
		// so len(runq) is exactly the count of *other* runnable peers.
		s.opRunnable = append(s.opRunnable, int32(len(s.runq)))
	}
	if s.opts.RecordEnabled {
		s.opActor = append(s.opActor, g.id)
		var ids []trace.GoID
		if len(s.runq) > 0 {
			ids = make([]trace.GoID, len(s.runq))
			for i, r := range s.runq {
				ids[i] = r.id
			}
		}
		s.opEnabled = append(s.opEnabled, ids)
	}
	if s.faults != nil {
		s.applyFaults(g, cat, file, line)
	}
	if s.yieldAt != nil || s.wakeAt != nil {
		// Systematic mode: yields fire exactly at the chosen op indices.
		// A lookup in a nil map is false, so either map may be absent.
		if target, ok := s.wakeAt[int64(s.ops)]; ok {
			g.wakeYield(target, file, line)
			return
		}
		if s.yieldAt[int64(s.ops)] {
			g.yield(trace.EvGoSched, file, line)
			return
		}
		if s.sliceOps >= sliceOpBudget {
			g.yield(trace.EvGoPreempt, file, line)
		}
		return
	}
	if s.yieldLeft > 0 && s.dec.Chance(s.opts.yieldProb()) {
		s.yieldLeft--
		g.yield(trace.EvGoSched, file, line)
		return
	}
	if s.sliceOps >= sliceOpBudget {
		g.yield(trace.EvGoPreempt, file, line)
		return
	}
	if p := s.opts.preemptProb(); p > 0 && s.dec.Chance(p) {
		g.yield(trace.EvGoPreempt, file, line)
	}
}

// HandlerHere is Handler with the CU attributed to the caller's call site.
func (g *G) HandlerHere() {
	file, line := Caller(1)
	g.Handler(file, line)
}

// pick removes and returns the next goroutine to dispatch.
func (s *Scheduler) pick() *G {
	var i int
	switch s.opts.Pick {
	case PickFIFO:
		i = 0
	default:
		i = s.Intn(len(s.runq))
	}
	g := s.runq[i]
	s.runq = append(s.runq[:i], s.runq[i+1:]...)
	return g
}

// dispatch runs one goroutine until it leaves the processor.
func (s *Scheduler) dispatch(g *G) {
	s.steps++
	s.sliceOps = 0
	s.current = g
	g.resume <- struct{}{}
	<-s.handoff
	s.current = nil
}

// Run executes main under a fresh scheduler and returns the classified
// result. It is the only entry point of the virtual runtime.
func Run(opts Options, main func(*G)) *Result {
	s := newScheduler(opts)
	mainG := s.newG("main", 0, false, "", 0)
	s.spawn(mainG, main)

	s.budget = s.opts.maxSteps()
	outcome := OutcomeOK

loop:
	for {
		if s.panicked {
			outcome = OutcomeCrash
			break
		}
		s.pollStoppers()
		if s.stopReq {
			// A streaming sink decided its verdict: halt the world here
			// instead of running the schedule out.
			outcome = OutcomeStopped
			break
		}
		if mainG.state == StateDone && !s.mainEnded {
			s.mainEnded = true
			// Main returned: surviving goroutines get a bounded drain to
			// finish naturally (the paper's watchdog grace period).
			s.budget = s.steps + s.opts.drainSteps()
		}
		// Injected stalls whose hold expired rejoin the run queue first.
		s.releaseStalled(false)
		if len(s.runq) == 0 {
			// Nothing runnable: advance virtual time to the next timer.
			if s.fireTimers() {
				continue
			}
			// Still nothing: force-release the earliest stalled goroutine
			// so an injected stall is never misread as a deadlock.
			if s.releaseStalled(true) {
				continue
			}
			break // settled: classify below
		}
		// The op budget (64 CUs per step on average) catches spin loops
		// whose slices are long; the step budget catches everything else.
		if s.steps >= s.budget || s.ops >= s.budget*64 {
			if s.mainEnded {
				break // drain budget exhausted; classify leaks below
			}
			outcome = OutcomeTimeout
			break loop
		}
		s.dispatch(s.pick())
	}

	if outcome == OutcomeOK && !s.panicked {
		outcome = s.classify(mainG)
	}
	if s.panicked {
		outcome = OutcomeCrash
	}
	s.stopWorld()
	s.flushSinks()
	for _, snk := range s.sinks {
		snk.Close()
	}
	if telemetry.Enabled() {
		// One batch of registry updates per run, never per event, so the
		// virtual runtime's hot loop stays telemetry-free.
		telemetry.SimRuns.Inc()
		telemetry.SimDispatches.Add(int64(s.steps))
		telemetry.SimOps.Add(int64(s.ops))
		telemetry.SimYields.Add(int64(opts.Delays - s.yieldLeft))
		telemetry.SimOpsPerRun.Observe(int64(s.ops))
	}
	r := s.result(outcome, mainG)
	s.release()
	return r
}

// classify inspects the settled world (nothing runnable, no timers or
// budget exhausted) and names the outcome.
func (s *Scheduler) classify(mainG *G) Outcome {
	if mainG.state != StateDone {
		// Main never finished and nothing can run: every live goroutine is
		// blocked — the runtime's global-deadlock condition.
		return OutcomeGlobalDeadlock
	}
	for _, g := range s.gs[:s.ng] {
		if !g.system && g.state != StateDone {
			return OutcomeLeak
		}
	}
	return OutcomeOK
}

// stopWorld unwinds every goroutine still parked so no simulated
// goroutines stay live across simulations (their hosts re-park into the
// pool).
func (s *Scheduler) stopWorld() {
	s.stopping = true
	for _, g := range s.gs[:s.ng] {
		if g.state == StateDone || g.state == StatePanicked {
			continue
		}
		g.resume <- struct{}{}
		<-s.handoff
	}
}

// result snapshots the final world.
func (s *Scheduler) result(outcome Outcome, mainG *G) *Result {
	r := &Result{
		Outcome:   outcome,
		Trace:     s.ect,
		Seed:      s.opts.Seed,
		Steps:     s.steps,
		Ops:       s.ops,
		MainEnded: mainG.state == StateDone,
		PanicVal:  s.panicVal,
		PanicG:    s.panicG,

		EarlyStopped: outcome == OutcomeStopped,
		OpRunnable:   s.opRunnable,
		OpActor:      s.opActor,
		OpEnabled:    s.opEnabled,
		EventOps:     s.eventOps,
	}
	for _, g := range s.gs[:s.ng] {
		info := g.info()
		r.Goroutines = append(r.Goroutines, info)
		if !g.system && g.state != StateDone && g.state != StatePanicked {
			r.Leaked = append(r.Leaked, info)
		}
	}
	switch d := s.dec.(type) {
	case *recorder:
		r.Schedule = d.log
	case *scriptDecider:
		r.ReplayDiverged = d.diverged
	}
	if s.faults != nil {
		r.Faults = s.faults.Applied()
		r.FaultsPending = s.faults.PendingCount()
	}
	return r
}
