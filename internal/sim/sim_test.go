package sim

import (
	"runtime"
	"testing"
	"time"

	"goat/internal/trace"
)

// quiet options: no preemption noise, no yields — fully deterministic.
func quiet() Options { return Options{PreemptProb: -1} }

func TestRunTrivialMain(t *testing.T) {
	r := Run(quiet(), func(g *G) {})
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK", r.Outcome)
	}
	if !r.MainEnded || len(r.Leaked) != 0 {
		t.Fatalf("result = %v", r)
	}
	if err := r.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	types := r.Trace.CountByType()
	if types[trace.EvGoStart] != 1 || types[trace.EvGoEnd] != 1 {
		t.Fatalf("lifecycle events = %v", types)
	}
}

func TestSpawnAndJoinViaBlockReady(t *testing.T) {
	var order []string
	r := Run(quiet(), func(g *G) {
		var waiter *G
		done := false
		g.Go("child", func(c *G) {
			order = append(order, "child")
			done = true
			if waiter != nil {
				c.Ready(waiter, 0, nil)
			}
		})
		if !done {
			waiter = g
			g.Block(trace.BlockRecv, 0, "test.go", 1)
		}
		order = append(order, "main")
	})
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%v)", r.Outcome, r)
	}
	if len(order) != 2 || order[0] != "child" || order[1] != "main" {
		t.Fatalf("order = %v", order)
	}
}

func TestGlobalDeadlock(t *testing.T) {
	r := Run(quiet(), func(g *G) {
		g.Block(trace.BlockRecv, 0, "test.go", 2) // nobody will wake us
	})
	if r.Outcome != OutcomeGlobalDeadlock {
		t.Fatalf("outcome = %v, want GDL", r.Outcome)
	}
	if r.MainEnded {
		t.Fatal("main should not have ended")
	}
}

func TestLeakWhenMainExits(t *testing.T) {
	r := Run(quiet(), func(g *G) {
		g.Go("stuck", func(c *G) {
			c.Block(trace.BlockSend, 0, "test.go", 3)
		})
		// Give the child a chance to start and block.
		g.Yield()
	})
	if r.Outcome != OutcomeLeak {
		t.Fatalf("outcome = %v, want PDL (result %v)", r.Outcome, r)
	}
	if len(r.Leaked) != 1 || r.Leaked[0].Name != "stuck" {
		t.Fatalf("leaked = %v", r.Leaked)
	}
	if r.Leaked[0].Reason != trace.BlockSend {
		t.Fatalf("leak reason = %v, want chan-send", r.Leaked[0].Reason)
	}
}

func TestLeakOfNeverScheduledGoroutine(t *testing.T) {
	// Main exits immediately; the child may never even start. Either way it
	// must be drained (run to completion) rather than reported leaked,
	// because it is runnable, finishes, and the drain lets it.
	r := Run(quiet(), func(g *G) {
		g.Go("late", func(c *G) {})
	})
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK after drain", r.Outcome)
	}
}

func TestTimeoutOnLivelock(t *testing.T) {
	opts := quiet()
	opts.MaxSteps = 500
	r := Run(opts, func(g *G) {
		for {
			g.Yield()
		}
	})
	if r.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %v, want TO", r.Outcome)
	}
}

func TestDrainBudgetBoundsSpinningLeftovers(t *testing.T) {
	opts := quiet()
	opts.DrainSteps = 200
	r := Run(opts, func(g *G) {
		g.Go("spinner", func(c *G) {
			for {
				c.Yield()
			}
		})
	})
	if r.Outcome != OutcomeLeak {
		t.Fatalf("outcome = %v, want PDL for spinning leftover", r.Outcome)
	}
	if len(r.Leaked) != 1 || r.Leaked[0].State != StateRunnable {
		t.Fatalf("leaked = %v", r.Leaked)
	}
}

func TestCrashOnPanic(t *testing.T) {
	r := Run(quiet(), func(g *G) {
		g.Go("bomber", func(c *G) {
			panic("boom")
		})
		g.Yield()
		g.Yield()
	})
	if r.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want CRASH", r.Outcome)
	}
	if r.PanicVal != "boom" {
		t.Fatalf("panic value = %v", r.PanicVal)
	}
}

func TestTimersAdvanceVirtualTime(t *testing.T) {
	var woke []string
	r := Run(quiet(), func(g *G) {
		g.Go("late", func(c *G) {
			c.s.AddTimer(c.s.Now()+200, c)
			c.Block(trace.BlockSleep, 0, "test.go", 5)
			woke = append(woke, "late")
		})
		g.Go("early", func(c *G) {
			c.s.AddTimer(c.s.Now()+100, c)
			c.Block(trace.BlockSleep, 0, "test.go", 6)
			woke = append(woke, "early")
		})
		g.s.AddTimer(g.s.Now()+300, g)
		g.Block(trace.BlockSleep, 0, "test.go", 7)
		woke = append(woke, "main")
	})
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%v)", r.Outcome, r)
	}
	if len(woke) != 3 || woke[0] != "early" || woke[1] != "late" || woke[2] != "main" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	prog := func(g *G) {
		for i := 0; i < 3; i++ {
			g.Go("w", func(c *G) {
				c.HandlerHere()
				c.Yield()
			})
		}
		g.Yield()
		g.Yield()
	}
	opts := Options{Seed: 42, Delays: 2}
	a := Run(opts, prog)
	b := Run(opts, prog)
	if a.Trace.String() != b.Trace.String() {
		t.Fatalf("same seed produced different traces:\n%s\n----\n%s", a.Trace, b.Trace)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	prog := func(g *G) {
		for i := 0; i < 4; i++ {
			g.Go("w", func(c *G) { c.Yield(); c.Yield() })
		}
		g.Yield()
		g.Yield()
	}
	base := Run(Options{Seed: 1, PreemptProb: -1}, prog).Trace.String()
	diverged := false
	for seed := int64(2); seed < 12; seed++ {
		if Run(Options{Seed: seed, PreemptProb: -1}, prog).Trace.String() != base {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("10 different seeds all produced the identical schedule")
	}
}

func TestYieldBudgetRespected(t *testing.T) {
	opts := Options{Seed: 7, Delays: 3, YieldProb: 1.0, PreemptProb: -1}
	r := Run(opts, func(g *G) {
		for i := 0; i < 10; i++ {
			g.Handler("f.go", i)
		}
	})
	scheds := r.Trace.CountByType()[trace.EvGoSched]
	if scheds != 3 {
		t.Fatalf("forced yields = %d, want exactly 3 (the budget)", scheds)
	}
}

func TestNoYieldsWhenDelaysZero(t *testing.T) {
	opts := Options{Seed: 7, Delays: 0, YieldProb: 1.0, PreemptProb: -1}
	r := Run(opts, func(g *G) {
		for i := 0; i < 10; i++ {
			g.Handler("f.go", i)
		}
	})
	if n := r.Trace.CountByType()[trace.EvGoSched]; n != 0 {
		t.Fatalf("yields = %d, want 0 at D=0", n)
	}
}

func TestSystemGoroutinesExcludedFromLeaks(t *testing.T) {
	r := Run(quiet(), func(g *G) {
		g.GoSystem("sys", func(c *G) {
			c.Block(trace.BlockSleep, 0, "sys.go", 1)
		})
		g.Yield()
	})
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want OK (system goroutines never leak)", r.Outcome)
	}
	found := false
	for _, gi := range r.Goroutines {
		if gi.Name == "sys" && gi.System {
			found = true
		}
	}
	if !found {
		t.Fatal("system goroutine missing from snapshot")
	}
}

func TestNoRealGoroutineLeakAcrossRuns(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		Run(Options{Seed: int64(i), PreemptProb: -1}, func(g *G) {
			g.Go("stuck", func(c *G) { c.Block(trace.BlockRecv, 0, "t.go", 1) })
			g.Go("fine", func(c *G) {})
			g.Yield()
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+5 {
		t.Fatalf("real goroutines leaked: before=%d after=%d", before, n)
	}
}

func TestTraceIsValidAndAttributed(t *testing.T) {
	r := Run(quiet(), func(g *G) {
		g.Go("child", func(c *G) {})
		g.Yield()
	})
	if err := r.Trace.Validate(); err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, r.Trace)
	}
	ev, ok := r.Trace.Creator(2)
	if !ok {
		t.Fatal("no GoCreate for child")
	}
	if ev.File != "sim_test.go" || ev.Line == 0 {
		t.Fatalf("creation CU = %s:%d, want sim_test.go:<line>", ev.File, ev.Line)
	}
	if ev.Str != "child" {
		t.Fatalf("creation name = %q", ev.Str)
	}
}

func TestNoTraceOption(t *testing.T) {
	opts := quiet()
	opts.NoTrace = true
	r := Run(opts, func(g *G) { g.Go("c", func(*G) {}); g.Yield() })
	if r.Trace != nil {
		t.Fatal("NoTrace run still captured a trace")
	}
	if r.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestPickFIFODeterministicOrder(t *testing.T) {
	var order []int
	opts := Options{Pick: PickFIFO, PreemptProb: -1}
	Run(opts, func(g *G) {
		for i := 0; i < 5; i++ {
			i := i
			g.Go("w", func(c *G) { order = append(order, i) })
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d of 5 goroutines", len(order))
	}
}

func TestOutcomeStringsAndBuggy(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeOK:             "OK",
		OutcomeGlobalDeadlock: "GDL",
		OutcomeLeak:           "PDL",
		OutcomeTimeout:        "TO",
		OutcomeCrash:          "CRASH",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
		if o.Buggy() != (o != OutcomeOK) {
			t.Errorf("%v.Buggy() wrong", o)
		}
	}
}

func TestResultStringMentionsLeaks(t *testing.T) {
	r := Run(quiet(), func(g *G) {
		g.Go("stuck", func(c *G) { c.Block(trace.BlockMutex, 0, "t.go", 9) })
		g.Yield()
	})
	s := r.String()
	for _, want := range []string{"PDL", "stuck", "mutex"} {
		if !containsStr(s, want) {
			t.Fatalf("Result.String() = %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
