package sim

import (
	"reflect"
	"testing"

	"goat/internal/trace"
)

func streamProg(g *G) {
	g.Go("child", func(c *G) {
		c.Yield()
	})
	g.Yield()
	g.Yield()
}

func TestSinkObservesBufferedStream(t *testing.T) {
	ref := Run(quiet(), streamProg)
	sink := trace.New(0)
	opts := quiet()
	opts.NoTrace = true
	opts.Sinks = []trace.Sink{sink}
	r := Run(opts, streamProg)
	if r.Trace != nil {
		t.Fatal("NoTrace run still buffered a trace")
	}
	if !reflect.DeepEqual(sink.Events, ref.Trace.Events) {
		t.Fatalf("sink stream differs from buffered trace:\n%v\nvs\n%v", sink.Events, ref.Trace.Events)
	}
}

// stopAfterSink requests an early stop once it has seen n events.
type stopAfterSink struct {
	after  int
	events int
	closed bool
}

func (s *stopAfterSink) Event(trace.Event)   { s.events++ }
func (s *stopAfterSink) Close()              { s.closed = true }
func (s *stopAfterSink) StopRequested() bool { return s.events >= s.after }

func TestEarlyStopHaltsTheWorld(t *testing.T) {
	spin := func(g *G) {
		for i := 0; i < 200; i++ {
			g.Yield()
		}
	}
	full := Run(quiet(), spin)
	if full.Outcome != OutcomeOK {
		t.Fatalf("reference outcome %v", full.Outcome)
	}

	sink := &stopAfterSink{after: 5}
	opts := quiet()
	opts.Sinks = []trace.Sink{sink}
	r := Run(opts, spin)
	if r.Outcome != OutcomeStopped || !r.EarlyStopped {
		t.Fatalf("outcome %v earlyStopped %v, want STOP", r.Outcome, r.EarlyStopped)
	}
	if r.Outcome.String() != "STOP" {
		t.Fatalf("outcome string %q", r.Outcome)
	}
	if r.Steps >= full.Steps {
		t.Fatalf("early stop did not shorten the run: %d vs %d steps", r.Steps, full.Steps)
	}
	if !sink.closed {
		t.Fatal("sink not closed after the stop")
	}
	// The partial stream is still a prefix of the full one.
	if r.Trace.Len() >= full.Trace.Len() {
		t.Fatalf("stopped trace has %d events, full %d", r.Trace.Len(), full.Trace.Len())
	}
	if !reflect.DeepEqual(r.Trace.Events, full.Trace.Events[:r.Trace.Len()]) {
		t.Fatal("stopped trace is not a prefix of the full trace")
	}
}

func TestPooledECTReuse(t *testing.T) {
	pool := trace.NewPool()
	opts := quiet()
	opts.ECT = pool.Get()
	r1 := Run(opts, streamProg)
	if r1.Trace != opts.ECT {
		t.Fatal("run did not record into the provided buffer")
	}
	ref := append([]trace.Event{}, r1.Trace.Events...)
	pool.Put(r1.Trace)

	reused := pool.Get()
	if reused != opts.ECT {
		t.Fatal("pool did not recycle the buffer")
	}
	opts2 := quiet()
	opts2.ECT = reused
	r2 := Run(opts2, streamProg)
	if r2.Trace != reused {
		t.Fatal("second run did not record into the recycled buffer")
	}
	if !reflect.DeepEqual(r2.Trace.Events, ref) {
		t.Fatal("recycled-buffer run differs from the first run")
	}
}

func TestPooledECTIgnoredWhenNoTrace(t *testing.T) {
	pool := trace.NewPool()
	opts := quiet()
	opts.NoTrace = true
	opts.ECT = pool.Get()
	r := Run(opts, streamProg)
	if r.Trace != nil {
		t.Fatal("NoTrace must win over a provided ECT buffer")
	}
}
