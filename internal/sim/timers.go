package sim

import (
	"container/heap"

	"goat/internal/trace"
)

// timer wakes a sleeping goroutine at a virtual instant.
type timer struct {
	at  int64 // virtual time (nanoseconds)
	seq int64 // tie-break: registration order
	g   *G
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// AddTimer schedules g to be woken at virtual time `at`. The goroutine must
// park itself (Block with BlockSleep) immediately after registering. With
// timer-skew faults enabled, the requested duration is stretched or shrunk
// by the plan's deterministic skew factor and the skew recorded in the ECT.
func (s *Scheduler) AddTimer(at int64, g *G) {
	if s.faults != nil {
		delta := at - s.now
		if skewed := s.faults.SkewDelta(delta); skewed != delta {
			s.Emit(trace.Event{G: g.id, Type: trace.EvFaultTimerSkew, Aux: skewed - delta})
			at = s.now + skewed
		}
	}
	s.timerSeq++
	heap.Push(&s.timers, timer{at: at, seq: s.timerSeq, g: g})
}

// fireTimers advances virtual time to the earliest pending timer and makes
// its goroutines runnable. It reports whether any goroutine was woken.
func (s *Scheduler) fireTimers() bool {
	fired := false
	for s.timers.Len() > 0 {
		next := s.timers[0]
		if fired && next.at > s.now {
			break
		}
		heap.Pop(&s.timers)
		if next.g.state != StateBlocked || next.g.reason != trace.BlockSleep {
			// The goroutine was woken by other means (or ended); stale timer.
			continue
		}
		if next.at > s.now {
			s.now = next.at
		}
		next.g.state = StateRunnable
		next.g.wakeNote = nil
		s.Emit(trace.Event{G: next.g.id, Type: trace.EvGoUnblock, Peer: next.g.id})
		s.runq = append(s.runq, next.g)
		fired = true
	}
	return fired
}
