// Dynamic partial-order reduction over the Must-HB graph.
//
// Delay-bounded exploration (Explore) treats every op index as a
// potential yield point; HB pruning (ExplorePruned) removes placements
// that provably reproduce an already-run schedule. DPOR inverts the
// question: instead of enumerating placements and filtering, it runs a
// schedule, asks the happens-before analysis *where reordering could
// matter*, and seeds backtrack points only there.
//
// After each run the trace is replayed through hb.BuildDeps in Must mode
// (lock-induced edges dropped — another schedule could acquire the locks
// in the other order, so they must not mask reorderability). A *racing
// pair* is a dependent, Must-concurrent, co-enabled pair of events of
// different goroutines: the certificate that executing them in the other
// order is both reachable (some scheduler choice runs the other side
// first) and meaningful (the two operations do not commute). For the
// earlier event of each racing pair, the explorer seeds a backtrack
// point: a forced yield at the op where that event's goroutine dispatched
// it, which defers the goroutine's entire suffix and lets the racing peer
// run first. Two refinements keep the point set minimal:
//
//   - window collapsing: yields at consecutive ops of the same goroutine
//     with no racing event between them defer the same reorderable
//     suffix up to independent (commuting) operations, so only the
//     earliest schedulable op of each window is seeded — which is also
//     exactly the placement Explore's ascending sweep would find first,
//     the alignment the equivalence battery pins;
//   - the runnable census (sim.Options.RecordRunnable): a yield at an op
//     with no runnable peer reschedules the same goroutine and cannot
//     realize any reversal.
//
// The sleep-set analogue is the Full-mode footprint memo: a run whose
// footprint was already visited is an equivalent interleaving of an
// explored schedule, so it is never *expanded* (its racing pairs would
// seed the same reversals again — by the reorder-persistence property
// the footprint certifies). Runs == SleepHits + DistinctFootprints is an
// invariant the tests assert.
//
// Exploration is breadth-first in placement depth, children ordered by
// op index, each level extending only past its parent's last yield —
// every placement is generated at most once, bounded by Config.MaxYields
// and the Config.MaxRuns budget over candidates considered. The campaign
// loop itself is engine.Run: planning pops the work queue, analysis and
// expansion happen in the OnRun observer, and detection uses the same
// detect.Goat post-hoc path as Explore, so verdicts are byte-identical.
package systematic

import (
	"context"
	"fmt"
	"sort"

	"goat/internal/detect"
	"goat/internal/engine"
	"goat/internal/hb"
	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// DPORStats accounts for an ExploreDPOR search.
type DPORStats struct {
	Considered         int // candidate placements examined, bounded by Config.MaxRuns
	Runs               int // placements executed
	Backtracks         int // backtrack points seeded (children enqueued)
	SkippedNoop        int // racing windows with no schedulable yield point
	SkippedDup         int // candidates whose placement was already queued
	SleepHits          int // executed runs footprint-equivalent to an explored one
	DistinctFootprints int // distinct HB-equivalence classes among executed runs
	MaxDepth           int // deepest placement executed (number of yields)
}

// String renders the stats in one line for reports.
func (st DPORStats) String() string {
	return fmt.Sprintf("%d considered: %d run, %d backtracks, %d noop-skipped, %d dup-skipped, %d sleep hits, %d distinct HB classes, depth %d",
		st.Considered, st.Runs, st.Backtracks, st.SkippedNoop, st.SkippedDup, st.SleepHits, st.DistinctFootprints, st.MaxDepth)
}

// dporNode is one placement in the exploration tree.
type dporNode struct {
	yields []int64              // sorted ascending
	wakes  map[int64]trace.GoID // wakes mode only
	depth  int
}

// maxOp returns the node's last scheduled intervention op.
func (n *dporNode) maxOp() int64 {
	var m int64
	if len(n.yields) > 0 {
		m = n.yields[len(n.yields)-1]
	}
	for op := range n.wakes {
		if op > m {
			m = op
		}
	}
	return m
}

func (n *dporNode) key() string {
	if len(n.wakes) == 0 {
		return placementKey(n.yields)
	}
	f := Finding{Yields: n.yields, Wakes: n.wakes}
	return f.DecisionString()
}

// candidate is one seeded backtrack point: the yield op and the racing
// peer that should run instead (used as the wake target in wakes mode).
type candidate struct {
	op   int64
	peer trace.GoID
}

// ExploreDPOR searches the yield-placement space with dynamic
// partial-order reduction driven by the Must-mode happens-before graph.
// On the same Config it finds the same bugs as Explore while executing a
// fraction of the schedules; the equivalence battery in dpor_test.go is
// the proof. It returns nil when the budget is spent without a detection.
func ExploreDPOR(prog func(*sim.G), cfg Config) (*Finding, DPORStats) {
	return NewExplorer().ExploreDPOR(prog, cfg)
}

// ExploreDPOR is the reusable-explorer form of the package-level
// function; the stats field is reset on entry (per-cell isolation).
func (x *Explorer) ExploreDPOR(prog func(*sim.G), cfg Config) (*Finding, DPORStats) {
	x.DPOR = DPORStats{}
	st := &x.DPOR
	defer func() {
		if telemetry.Enabled() {
			telemetry.SysPlacementsRun.Add(int64(st.Runs))
			telemetry.SysPlacementsPruned.Add(int64(st.SkippedNoop + st.SkippedDup))
			telemetry.SysDPORBacktracks.Add(int64(st.Backtracks))
			telemetry.SysDPORSleepHits.Add(int64(st.SleepHits))
		}
	}()

	footprints := map[uint64]bool{}
	queued := map[string]bool{}
	root := &dporNode{yields: []int64{}}
	work := []*dporNode{root}
	queued[root.key()] = true
	st.Considered++

	var cur *dporNode
	var finding *Finding

	plan := func(i int, _ *engine.Feedback) sim.Options {
		cur, work = work[0], work[1:]
		opts := baseOptions(cfg.Seed)
		opts.YieldAt = append([]int64{}, cur.yields...)
		if len(cur.wakes) > 0 {
			opts.WakeAt = make(map[int64]trace.GoID, len(cur.wakes))
			for op, g := range cur.wakes {
				opts.WakeAt[op] = g
			}
		}
		opts.RecordRunnable = true
		opts.RecordEnabled = true
		opts.RecordOps = true
		return opts
	}

	onRun := func(fb *engine.Feedback) (bool, error) {
		node := cur
		st.Runs++
		if node.depth > st.MaxDepth {
			st.MaxDepth = node.depth
		}
		if fb.Detection != nil && fb.Detection.Found {
			finding = &Finding{
				Seed:      cfg.Seed,
				Yields:    append([]int64{}, node.yields...),
				Wakes:     node.wakes,
				Runs:      st.Runs,
				Detection: *fb.Detection,
			}
			return true, nil
		}
		fp := hb.FromTrace(fb.Result.Trace, hb.Full).Footprint
		if footprints[fp] {
			// Sleep set: an equivalent interleaving was already explored
			// and expanded; re-expanding would seed the same reversals.
			st.SleepHits++
		} else {
			footprints[fp] = true
			if node.depth < cfg.maxYields() {
				x.expand(node, fb.Result, cfg, st, &work, queued)
			}
		}
		st.DistinctFootprints = len(footprints)
		return len(work) == 0, nil
	}

	_, err := engine.Run(context.Background(), engine.Config{
		Prog:               prog,
		Plan:               plan,
		Runs:               cfg.maxRuns(),
		Detector:           detect.Goat{},
		DetectorNeedsTrace: true,
		NeedTrace:          true,
		Buffered:           true,
		Pool:               trace.NewPool(),
		StopOnFound:        true,
		OnRun:              onRun,
	})
	if err != nil {
		// The engine only errors on misconfiguration or a cancelled
		// context; neither applies here, but a partial search still
		// reports honestly: no finding.
		return nil, *st
	}
	return finding, *st
}

// expand seeds the node's backtrack points: one child placement per
// racing window of the node's own run, each extending the placement past
// its last intervention op.
func (x *Explorer) expand(node *dporNode, r *sim.Result, cfg Config, st *DPORStats, work *[]*dporNode, queued map[string]bool) {
	m := node.maxOp()
	var cands []candidate
	if r.Ops >= sim.SliceOpBudget {
		// Past the slice-op budget forced preempts perturb the suffix and
		// the census/HB reasoning below is no longer a proof (the same
		// guard canonicalize applies). Degrade to the exhaustive suffix
		// sweep rather than risk losing a schedule.
		for op := m + 1; op <= int64(r.Ops); op++ {
			if op-1 < int64(len(r.OpRunnable)) && r.OpRunnable[op-1] == 0 {
				continue
			}
			cands = append(cands, candidate{op: op})
		}
	} else {
		var noop int
		cands, noop = dporCandidates(r, m)
		st.SkippedNoop += noop
	}
	for _, c := range cands {
		if st.Considered >= cfg.maxRuns() {
			return
		}
		st.Considered++
		child := &dporNode{depth: node.depth + 1}
		if x.Wakes && c.peer != 0 {
			child.yields = append([]int64{}, node.yields...)
			child.wakes = make(map[int64]trace.GoID, len(node.wakes)+1)
			for op, g := range node.wakes {
				child.wakes[op] = g
			}
			child.wakes[c.op] = c.peer
		} else {
			child.yields = append(append([]int64{}, node.yields...), c.op)
		}
		key := child.key()
		if queued[key] {
			st.SkippedDup++
			continue
		}
		queued[key] = true
		*work = append(*work, child)
		st.Backtracks++
	}
}

// dporCandidates derives the backtrack points of one run: for every
// racing window — a maximal range of one goroutine's ops after the
// node's last intervention containing exactly one racing event, at its
// end — the earliest op with a runnable peer. Returned sorted by op;
// windows with no schedulable op are counted as noops.
func dporCandidates(r *sim.Result, m int64) ([]candidate, int) {
	deps := hb.BuildDeps(r.Trace, hb.Must)

	// Per-goroutine op timeline, from the actor census.
	opsOf := map[trace.GoID][]int64{}
	for idx, g := range r.OpActor {
		opsOf[g] = append(opsOf[g], int64(idx+1))
	}

	// Racing events, grouped by the earlier event's goroutine and mapped
	// to the op that dispatched the event (EventOps); each carries the
	// peer that should be scheduled first instead.
	type racingOp struct {
		op   int64
		peer trace.GoID
	}
	ropsOf := map[trace.GoID][]racingOp{}
	for _, p := range deps.RacingPairs() {
		if !deps.CoEnabled(p[0], p[1]) {
			continue
		}
		e := deps.Events[p[0]]
		if p[0] >= len(r.EventOps) {
			continue
		}
		op := r.EventOps[p[0]]
		if op == 0 {
			continue // dispatched before the goroutine's first op
		}
		ropsOf[e.G] = append(ropsOf[e.G], racingOp{op: op, peer: deps.Events[p[1]].G})
	}

	gs := make([]trace.GoID, 0, len(ropsOf))
	for g := range ropsOf {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })

	var cands []candidate
	noops := 0
	seen := map[int64]bool{}
	for _, g := range gs {
		rops := ropsOf[g]
		sort.Slice(rops, func(i, j int) bool { return rops[i].op < rops[j].op })
		prev := int64(0) // end of the previous racing window of g
		for _, rp := range rops {
			if rp.op == prev {
				continue // several pairs share the racing event's op
			}
			if rp.op <= m {
				prev = rp.op
				continue // reversal handled by an ancestor or sibling
			}
			winLo := prev + 1
			if winLo <= m {
				winLo = m + 1
			}
			prev = rp.op
			found := false
			for _, o := range opsOf[g] {
				if o < winLo || o > rp.op {
					continue
				}
				if o-1 >= int64(len(r.OpRunnable)) || r.OpRunnable[o-1] == 0 {
					continue // no runnable peer: yield is a no-op
				}
				if !seen[o] {
					seen[o] = true
					cands = append(cands, candidate{op: o, peer: rp.peer})
				}
				found = true
				break
			}
			if !found {
				noops++
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].op < cands[j].op })
	return cands, noops
}
