// The generated-kernel half of the DPOR equivalence battery. It lives in
// the external test package because kernelgen (via harness) imports
// systematic — an in-package test importing kernelgen would be a cycle.
package systematic_test

import (
	"math/rand"
	"testing"

	"goat/internal/detect"
	"goat/internal/kernelgen"
	"goat/internal/systematic"
)

// TestExploreDPORMatchesExploreGenerated sweeps generated kernels —
// shapes no hand-written goker kernel pins — and asserts DPOR never
// loses a detection Explore makes: same found-ness, same verdict (or a
// replay-verified equivalent placement), on 200+ programs half of which
// carry a planted bug.
func TestExploreDPORMatchesExploreGenerated(t *testing.T) {
	const sweeps = 220
	rng := rand.New(rand.NewSource(7))
	found, exploreRuns, dporRuns := 0, 0, 0
	for i := 0; i < sweeps; i++ {
		buggy := i%2 == 0
		p := kernelgen.Generate(kernelgen.RandomDecision(rng, buggy))
		main := p.Main()
		cfg := systematic.Config{Seed: int64(i + 1), MaxRuns: 150}
		f1 := systematic.Explore(main, cfg)
		f2, st := systematic.ExploreDPOR(main, cfg)
		if (f1 == nil) != (f2 == nil) {
			t.Errorf("gen[%d] (buggy=%v): explore found=%v, dpor found=%v (stats: %s)\n%s",
				i, buggy, f1 != nil, f2 != nil, st, p)
			continue
		}
		if f1 == nil {
			continue
		}
		found++
		exploreRuns += f1.Runs
		dporRuns += f2.Runs
		if f1.Detection.Verdict != f2.Detection.Verdict {
			t.Errorf("gen[%d]: verdict %q vs %q\n%s", i, f1.Detection.Verdict, f2.Detection.Verdict, p)
			continue
		}
		d := (detect.Goat{}).Detect(f2.Replay(main))
		if !d.Found || d.Verdict != f2.Detection.Verdict {
			t.Errorf("gen[%d]: DPOR finding %q does not replay: %+v\n%s", i, f2.DecisionString(), d, p)
		}
	}
	if found == 0 {
		t.Fatal("sweep detected nothing — generator or explorer broken")
	}
	t.Logf("%d/%d kernels detected; executions: explore %d, dpor %d", found, sweeps, exploreRuns, dporRuns)
}
