package systematic

import (
	"fmt"
	"testing"

	"goat/internal/detect"
	"goat/internal/goker"
	"goat/internal/sim"
	"goat/internal/trace"
)

// TestExploreDPORMatchesExplore is the equivalence contract of the DPOR
// explorer: on every registered kernel, at several seeds, the
// dependency-driven search reports the same bug as the exhaustive one —
// the same verdict, and either the identical minimal yield placement or
// a placement verified equivalent by replay (Explore's random multi-yield
// phase is seed-lucky; DPOR's answer is deterministic). Across the suite
// DPOR must spend strictly fewer executions.
func TestExploreDPORMatchesExplore(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			exploreRuns, dporRuns := 0, 0
			for _, k := range goker.All() {
				cfg := Config{Seed: seed, MaxRuns: 400}
				f1 := Explore(k.Main, cfg)
				f2, st := ExploreDPOR(k.Main, cfg)
				if (f1 == nil) != (f2 == nil) {
					t.Errorf("%s: explore found=%v, dpor found=%v (stats: %s)", k.ID, f1 != nil, f2 != nil, st)
					continue
				}
				checkDPORStats(t, k.ID, st, f2 != nil)
				if f1 == nil {
					continue
				}
				if f1.Detection.Verdict != f2.Detection.Verdict {
					t.Errorf("%s: verdict %q vs %q", k.ID, f1.Detection.Verdict, f2.Detection.Verdict)
				}
				if fmt.Sprint(f1.Yields) != fmt.Sprint(f2.Yields) {
					// Not the identical placement: accept it only if DPOR's
					// finding independently replays to the same verdict.
					d := (detect.Goat{}).Detect(f2.Replay(k.Main))
					if !d.Found || d.Verdict != f1.Detection.Verdict {
						t.Errorf("%s: yields %v vs %v and replay does not verify (%+v)",
							k.ID, f1.Yields, f2.Yields, d)
					}
				}
				exploreRuns += f1.Runs
				dporRuns += f2.Runs
			}
			if dporRuns >= exploreRuns {
				t.Errorf("DPOR saved nothing: %d executions vs explore's %d", dporRuns, exploreRuns)
			}
			t.Logf("executions across the suite: explore %d, dpor %d (%.0f%% saved)",
				exploreRuns, dporRuns, 100*float64(exploreRuns-dporRuns)/float64(exploreRuns))
		})
	}
}

// checkDPORStats asserts the explorer's accounting invariants:
//   - every candidate examined is the root, a dup, or an enqueued child;
//   - every executed run either hit the sleep set (footprint memo) or
//     contributed a new HB class — except the detecting run, which
//     returns before analysis.
func checkDPORStats(t *testing.T, id string, st DPORStats, found bool) {
	t.Helper()
	if st.Considered != 1+st.SkippedDup+st.Backtracks {
		t.Errorf("%s: inconsistent candidate accounting: %s", id, st)
	}
	detecting := 0
	if found {
		detecting = 1
	}
	if st.Runs != st.SleepHits+st.DistinctFootprints+detecting {
		t.Errorf("%s: sleep-set invariant violated (found=%v): %s", id, found, st)
	}
	if st.Runs > st.Considered {
		t.Errorf("%s: more runs than candidates: %s", id, st)
	}
}

// TestExploreDPORSeedsOnlyRacingWindows pins the reduction itself on a
// kernel with a known shape: serving_2137's base schedule has three
// racing windows (lock acquisition, length check, the channel send), so
// the first expansion seeds exactly three backtrack points — not one per
// op as the blind sweep would.
func TestExploreDPORSeedsOnlyRacingWindows(t *testing.T) {
	k, ok := goker.ByID("serving_2137")
	if !ok {
		t.Fatal("serving_2137 not registered")
	}
	f, st := ExploreDPOR(k.Main, Config{Seed: 1, MaxRuns: 400})
	if f == nil {
		t.Fatalf("serving_2137 bug not found: %s", st)
	}
	if !contains(f.Detection.Verdict, "PDL") {
		t.Fatalf("verdict %q, want a PDL class", f.Detection.Verdict)
	}
	opts := baseOptions(1)
	opts.RecordRunnable = true
	opts.RecordEnabled = true
	opts.RecordOps = true
	base := sim.Run(opts, k.Main)
	cands, _ := dporCandidates(base, 0)
	if len(cands) != 3 {
		t.Errorf("base expansion seeded %d backtrack points (%v), want 3 racing windows", len(cands), cands)
	}
	if len(cands) >= base.Ops {
		t.Errorf("no reduction: %d backtrack points for a %d-op base run", len(cands), base.Ops)
	}
}

// TestExplorerStatsIsolation is the regression test for the stats
// accumulation bug: an Explorer reused across campaign cells must report
// per-call stats, not a running total.
func TestExplorerStatsIsolation(t *testing.T) {
	big, ok := goker.ByID("etcd_7443")
	if !ok {
		t.Fatal("etcd_7443 not registered")
	}
	small, ok := goker.ByID("cockroach_1055")
	if !ok {
		t.Fatal("cockroach_1055 not registered")
	}
	cfg := Config{Seed: 1, MaxRuns: 400}

	x := NewExplorer()
	x.ExplorePruned(big.Main, cfg)
	_, st2 := x.ExplorePruned(small.Main, cfg)
	_, fresh := ExplorePruned(small.Main, cfg)
	if st2 != fresh {
		t.Errorf("ExplorePruned stats leaked across cells: reused=%s fresh=%s", st2, fresh)
	}

	y := NewExplorer()
	y.ExploreDPOR(big.Main, cfg)
	_, dst2 := y.ExploreDPOR(small.Main, cfg)
	_, dfresh := ExploreDPOR(small.Main, cfg)
	if dst2 != dfresh {
		t.Errorf("ExploreDPOR stats leaked across cells: reused=%s fresh=%s", dst2, dfresh)
	}
}

func TestExploreDPORRespectsBudget(t *testing.T) {
	healthy := func(g *sim.G) {
		g.Go("w", func(c *sim.G) { c.HandlerHere() })
		g.Yield()
	}
	f, st := ExploreDPOR(healthy, Config{MaxRuns: 50})
	if f != nil {
		t.Fatalf("healthy program reported buggy: %v", f)
	}
	if st.Considered > 50 {
		t.Fatalf("budget exceeded: %s", st)
	}
	checkDPORStats(t, "healthy", st, false)
}

// TestExploreDPORTerminatesEarly: on a healthy program the worklist
// drains — DPOR proves the bounded space exhausted and stops far below
// the budget, where Explore would burn all of MaxRuns sampling.
func TestExploreDPORTerminatesEarly(t *testing.T) {
	healthy := func(g *sim.G) {
		g.Go("w", func(c *sim.G) { c.HandlerHere(); c.HandlerHere() })
		g.HandlerHere()
		g.Yield()
	}
	f, st := ExploreDPOR(healthy, Config{MaxRuns: 400})
	if f != nil {
		t.Fatalf("healthy program reported buggy: %v", f)
	}
	if st.Runs >= 400 {
		t.Fatalf("DPOR did not terminate early: %s", st)
	}
}

func TestExploreDPORWakesMode(t *testing.T) {
	k, ok := goker.ByID("serving_2137")
	if !ok {
		t.Fatal("serving_2137 not registered")
	}
	x := NewExplorer()
	x.Wakes = true
	f, st := x.ExploreDPOR(k.Main, Config{Seed: 1, MaxRuns: 400})
	if f == nil {
		t.Fatalf("wakes-mode search missed the bug: %s", st)
	}
	if len(f.Wakes) == 0 {
		t.Fatalf("wakes-mode finding carries no wake decisions: %v", f)
	}
	// The decision string must replay to the recorded detection.
	d := (detect.Goat{}).Detect(f.Replay(k.Main))
	if !d.Found || d.Verdict != f.Detection.Verdict {
		t.Fatalf("wake finding %q does not replay: %+v", f.DecisionString(), d)
	}
}

func TestDecisionString(t *testing.T) {
	cases := []struct {
		f    Finding
		want string
	}{
		{Finding{}, "base"},
		{Finding{Yields: []int64{4}}, "y4"},
		{Finding{Yields: []int64{2, 7}}, "y2,y7"},
		{Finding{Wakes: map[int64]trace.GoID{3: 2}}, "w3:g2"},
		{Finding{Yields: []int64{5}, Wakes: map[int64]trace.GoID{2: 4}}, "w2:g4,y5"},
	}
	for _, c := range cases {
		if got := c.f.DecisionString(); got != c.want {
			t.Errorf("DecisionString(%v/%v) = %q, want %q", c.f.Yields, c.f.Wakes, got, c.want)
		}
	}
}

func TestFindingReplayReproduces(t *testing.T) {
	for _, id := range []string{"serving_2137", "etcd_7443", "kubernetes_6632"} {
		k, ok := goker.ByID(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		f, st := ExploreDPOR(k.Main, Config{Seed: 1, MaxRuns: 400})
		if f == nil {
			t.Fatalf("%s: no finding (%s)", id, st)
		}
		d := (detect.Goat{}).Detect(f.Replay(k.Main))
		if !d.Found || d.Verdict != f.Detection.Verdict {
			t.Errorf("%s: finding %q does not replay: got %+v want %q",
				id, f.DecisionString(), d, f.Detection.Verdict)
		}
	}
}

func TestDPORStatsString(t *testing.T) {
	s := DPORStats{Considered: 12, Runs: 5, Backtracks: 11, SkippedNoop: 2,
		SkippedDup: 1, SleepHits: 1, DistinctFootprints: 3, MaxDepth: 2}.String()
	for _, want := range []string{"12 considered", "5 run", "11 backtracks", "2 noop",
		"1 dup", "1 sleep", "3 distinct", "depth 2"} {
		if !contains(s, want) {
			t.Fatalf("stats %q missing %q", s, want)
		}
	}
}
