package systematic

// Explorer is the reusable exploration context campaigns hold across
// cells: one value drives many kernels through ExplorePruned /
// ExploreDPOR and exposes the last call's statistics. Every Explore*
// method resets its stats field on entry — per-cell isolation is part of
// the contract, pinned by TestExplorerStatsIsolation. (The engine-driven
// harness used to observe stats accumulating across cells when an
// explorer value was reused; the reset is the fix.)
//
// An Explorer is not safe for concurrent use; campaigns that parallelize
// across cells give each worker its own.
type Explorer struct {
	// Prune holds the statistics of the most recent ExplorePruned call.
	Prune PruneStats
	// DPOR holds the statistics of the most recent ExploreDPOR call.
	DPOR DPORStats
	// Wakes switches ExploreDPOR to targeted backtracking: children are
	// seeded as wake-at-backtrack-point placements (sim.Options.WakeAt)
	// that dispatch the racing peer directly instead of relying on FIFO
	// rotation. Off by default — the plain-yield space is the one the
	// equivalence battery proves bit-identical to Explore.
	Wakes bool
}

// NewExplorer returns a fresh exploration context.
func NewExplorer() *Explorer { return &Explorer{} }

// pruneStats returns the live stats field of the current call.
func (x *Explorer) pruneStats() *PruneStats { return &x.Prune }
