// Happens-before schedule pruning for the systematic explorer.
//
// Delay-bounded exploration re-executes the program once per yield
// placement, but many placements are schedule-equivalent: a forced yield
// at an op where no other goroutine is runnable reschedules the same
// goroutine immediately, producing the base schedule again. The pruner
// canonicalizes every candidate placement against the base run's
// per-op runnable census (sim.Options.RecordRunnable) and skips any
// placement whose canonical form was already explored — without running
// it. Each executed run additionally streams through an hb.Engine sink,
// so the number of distinct happens-before footprints actually visited
// is reported alongside the raw run count.
package systematic

import (
	"fmt"
	"math/rand"
	"sort"

	"goat/internal/detect"
	"goat/internal/hb"
	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// PruneStats accounts for an ExplorePruned search. Considered counts
// every placement examined (it is what the MaxRuns budget bounds, so a
// pruned search walks exactly the candidate sequence Explore would);
// Runs counts the subset actually executed.
type PruneStats struct {
	Considered         int // placements examined, bounded by Config.MaxRuns
	Runs               int // placements executed
	SkippedNoop        int // canonicalized to the (already run) base schedule
	SkippedDup         int // canonicalized to an already-executed placement
	DistinctFootprints int // distinct HB-equivalence classes among executed runs
}

// String renders the stats in one line for reports.
func (st PruneStats) String() string {
	return fmt.Sprintf("%d considered: %d run, %d noop-skipped, %d dup-skipped, %d distinct HB classes",
		st.Considered, st.Runs, st.SkippedNoop, st.SkippedDup, st.DistinctFootprints)
}

// runWithHB executes prog like runWith, with a streaming Full-mode
// hb.Engine attached as an event sink; it returns the run's HB footprint
// alongside the result.
func runWithHB(prog func(*sim.G), seed int64, yields []int64, record bool) (*sim.Result, uint64) {
	opts := baseOptions(seed)
	opts.YieldAt = append([]int64{}, yields...)
	opts.RecordRunnable = record
	en := hb.NewEngine(hb.Full)
	opts.Sinks = []trace.Sink{en}
	r := sim.Run(opts, prog)
	return r, en.Footprint()
}

// canonicalize drops the leading yields of a sorted placement that the
// base run proves are no-ops: while every yield so far was a no-op the
// schedule is still the base schedule, so a yield at an op where the
// base had no other runnable goroutine reschedules the same goroutine
// and changes nothing. The rule is only sound when the base run never
// reached the slice-op budget — a forced yield resets the slice counter,
// so past the budget even a no-op yield moves later forced preempts.
func canonicalize(yields []int64, opRunnable []int32, baseOps int) []int64 {
	if baseOps >= sim.SliceOpBudget {
		return yields
	}
	for len(yields) > 0 {
		op := yields[0]
		if op > int64(len(opRunnable)) || opRunnable[op-1] != 0 {
			break
		}
		yields = yields[1:]
	}
	return yields
}

// placementKey is the dedup key of a canonical placement.
func placementKey(yields []int64) string { return fmt.Sprint(yields) }

// ExplorePruned is Explore with happens-before schedule pruning: it
// examines the identical placement sequence (same seed, same sampling
// order, same MaxRuns budget over placements considered) but skips the
// executions the base run's runnable census proves redundant. The
// returned finding is identical to Explore's on the same configuration —
// only fewer executions are spent reaching it.
func ExplorePruned(prog func(*sim.G), cfg Config) (*Finding, PruneStats) {
	return NewExplorer().ExplorePruned(prog, cfg)
}

// ExplorePruned is the reusable-explorer form of the package-level
// function. The stats field is reset on entry, so a campaign that drives
// many cells through one Explorer gets per-cell stats, never a running
// total (the accumulation bug the engine wiring used to hit).
func (x *Explorer) ExplorePruned(prog func(*sim.G), cfg Config) (*Finding, PruneStats) {
	x.Prune = PruneStats{}
	goat := detect.Goat{}
	st := x.pruneStats()
	defer func() {
		if telemetry.Enabled() {
			telemetry.SysPlacementsRun.Add(int64(st.Runs))
			telemetry.SysPlacementsPruned.Add(int64(st.SkippedNoop + st.SkippedDup))
		}
	}()
	footprints := map[uint64]bool{}
	explored := map[string]bool{} // canonical placements already executed

	run := func(yields []int64) *Finding {
		st.Runs++
		r, fp := runWithHB(prog, cfg.Seed, yields, false)
		footprints[fp] = true
		st.DistinctFootprints = len(footprints)
		if d := goat.Detect(r); d.Found {
			sorted := append([]int64{}, yields...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			return &Finding{Seed: cfg.Seed, Yields: sorted, Runs: st.Runs, Detection: d}
		}
		return nil
	}

	// The base schedule first, recording the runnable census the pruning
	// rules consult.
	st.Considered++
	st.Runs++
	base, baseFP := runWithHB(prog, cfg.Seed, nil, true)
	footprints[baseFP] = true
	st.DistinctFootprints = len(footprints)
	if d := goat.Detect(base); d.Found {
		return &Finding{Seed: cfg.Seed, Yields: []int64{}, Runs: st.Runs, Detection: d}, *st
	}
	n := int64(base.Ops)
	if n == 0 {
		return nil, *st
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Single-yield sweep: a yield the base proves is a no-op reproduces
	// the base schedule — skip the execution.
	for op := int64(1); op <= n && st.Considered < cfg.maxRuns(); op++ {
		st.Considered++
		canon := canonicalize([]int64{op}, base.OpRunnable, base.Ops)
		if len(canon) == 0 {
			st.SkippedNoop++
			continue
		}
		explored[placementKey(canon)] = true
		if f := run([]int64{op}); f != nil {
			return f, *st
		}
	}
	// Random placements of 2..D yields, drawn from the same rng sequence
	// as Explore. Canonicalization strips leading no-op yields; whatever
	// remains is skipped when an equivalent placement already ran.
	maxK := cfg.maxYields()
	if int64(maxK) > n {
		maxK = int(n)
	}
	if maxK < 2 {
		return nil, *st
	}
	for st.Considered < cfg.maxRuns() {
		k := 2 + rng.Intn(maxK-1)
		set := map[int64]bool{}
		for len(set) < k {
			set[1+rng.Int63n(n)] = true
		}
		yields := make([]int64, 0, k)
		for op := range set {
			yields = append(yields, op)
		}
		st.Considered++
		sorted := append([]int64{}, yields...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		canon := canonicalize(sorted, base.OpRunnable, base.Ops)
		if len(canon) == 0 {
			st.SkippedNoop++
			continue
		}
		key := placementKey(canon)
		if explored[key] {
			st.SkippedDup++
			continue
		}
		explored[key] = true
		if f := run(yields); f != nil {
			return f, *st
		}
	}
	return nil, *st
}
