package systematic

import (
	"testing"

	"goat/internal/goker"
	"goat/internal/sim"
)

func TestCanonicalizeDropsLeadingNoopYields(t *testing.T) {
	// Ops 1 and 2 had no other runnable goroutine; op 3 did.
	runnable := []int32{0, 0, 2, 1}
	cases := []struct {
		in, want []int64
	}{
		{[]int64{1}, nil},
		{[]int64{2}, nil},
		{[]int64{3}, []int64{3}},
		{[]int64{1, 2}, nil},
		{[]int64{1, 3}, []int64{3}},
		{[]int64{2, 3, 4}, []int64{3, 4}},
		// A trailing no-op after an effective yield must survive: the
		// census only predicts while the schedule is still the base one.
		{[]int64{3, 4}, []int64{3, 4}},
		{nil, nil},
	}
	for _, c := range cases {
		got := canonicalize(append([]int64{}, c.in...), runnable, 4)
		if len(got) != len(c.want) {
			t.Errorf("canonicalize(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("canonicalize(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
	// Past the slice-op budget the rule is unsound and must disable.
	got := canonicalize([]int64{1}, runnable, sim.SliceOpBudget)
	if len(got) != 1 {
		t.Errorf("canonicalize must be disabled at the slice budget, got %v", got)
	}
}

// TestExplorePrunedMatchesExplore is the equivalence contract: on every
// registered kernel, the pruned search returns the same finding (same
// yield placement, same verdict) as the exhaustive one, while executing
// no more — and across the suite strictly fewer — runs.
func TestExplorePrunedMatchesExplore(t *testing.T) {
	exploreRuns, prunedRuns := 0, 0
	for _, k := range goker.All() {
		cfg := Config{Seed: 1, MaxRuns: 400}
		f1 := Explore(k.Main, cfg)
		f2, st := ExplorePruned(k.Main, cfg)
		if (f1 == nil) != (f2 == nil) {
			t.Errorf("%s: explore found=%v, pruned found=%v (stats: %s)", k.ID, f1 != nil, f2 != nil, st)
			continue
		}
		if st.Runs+st.SkippedNoop+st.SkippedDup != st.Considered {
			t.Errorf("%s: inconsistent stats: %s", k.ID, st)
		}
		if f1 != nil {
			if f1.Detection.Verdict != f2.Detection.Verdict {
				t.Errorf("%s: verdict %q vs %q", k.ID, f1.Detection.Verdict, f2.Detection.Verdict)
			}
			if len(f1.Yields) != len(f2.Yields) {
				t.Errorf("%s: yields %v vs %v", k.ID, f1.Yields, f2.Yields)
			} else {
				for i := range f1.Yields {
					if f1.Yields[i] != f2.Yields[i] {
						t.Errorf("%s: yields %v vs %v", k.ID, f1.Yields, f2.Yields)
						break
					}
				}
			}
			if f2.Runs > f1.Runs {
				t.Errorf("%s: pruned spent more executions (%d) than explore (%d)", k.ID, f2.Runs, f1.Runs)
			}
			exploreRuns += f1.Runs
			prunedRuns += f2.Runs
		}
	}
	if prunedRuns >= exploreRuns {
		t.Errorf("pruning saved nothing: %d executions vs explore's %d", prunedRuns, exploreRuns)
	}
	t.Logf("executions across the suite: explore %d, pruned %d (%.0f%% saved)",
		exploreRuns, prunedRuns, 100*float64(exploreRuns-prunedRuns)/float64(exploreRuns))
}

func TestExplorePrunedRespectsBudget(t *testing.T) {
	healthy := func(g *sim.G) {
		g.Go("w", func(c *sim.G) { c.HandlerHere() })
		g.Yield()
	}
	f, st := ExplorePruned(healthy, Config{MaxRuns: 50})
	if f != nil {
		t.Fatalf("healthy program reported buggy: %v", f)
	}
	if st.Considered > 50 {
		t.Fatalf("budget exceeded: %s", st)
	}
	if st.Runs > st.Considered {
		t.Fatalf("impossible stats: %s", st)
	}
}

func TestPruneStatsString(t *testing.T) {
	s := PruneStats{Considered: 10, Runs: 4, SkippedNoop: 5, SkippedDup: 1, DistinctFootprints: 3}.String()
	for _, want := range []string{"10 considered", "4 run", "5 noop", "1 dup", "3 distinct"} {
		if !contains(s, want) {
			t.Fatalf("stats %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
