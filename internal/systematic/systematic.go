// Package systematic implements delay-bounded systematic schedule testing
// and schedule minimization — the deterministic counterpart of GoAT's
// probabilistic yield injection, in the tradition of the delay-bounded
// exploration the paper builds on.
//
// In systematic mode the entire schedule is a deterministic function of
// (seed, yield placement): the base schedule runs FIFO with no noise, and
// a configuration adds forced yields at chosen concurrency-usage indices
// (the global op counter). The explorer searches placements within the
// delay bound D; the minimizer then shrinks a bug-triggering placement to
// a minimal one — directly quantifying the paper's observation that the
// benchmark's bugs fall to "less than three yields".
package systematic

import (
	"fmt"
	"math/rand"
	"sort"

	"goat/internal/detect"
	"goat/internal/sim"
	"goat/internal/telemetry"
	"goat/internal/trace"
)

// Config bounds an exploration.
type Config struct {
	// Seed drives placement sampling and the base schedule's select picks.
	Seed int64
	// MaxYields is the delay bound D (default 3).
	MaxYields int
	// MaxRuns caps the number of executions (default 2000).
	MaxRuns int
}

func (c Config) maxYields() int {
	if c.MaxYields <= 0 {
		return 3
	}
	return c.MaxYields
}

func (c Config) maxRuns() int {
	if c.MaxRuns <= 0 {
		return 2000
	}
	return c.MaxRuns
}

// baseOptions is the deterministic substrate every configuration shares.
func baseOptions(seed int64) sim.Options {
	return sim.Options{
		Seed:        seed,
		Pick:        sim.PickFIFO,
		PreemptProb: -1,
		YieldAt:     []int64{}, // non-nil: systematic mode even with no yields
	}
}

// runWith executes prog with yields forced at the given op indices.
func runWith(prog func(*sim.G), seed int64, yields []int64) *sim.Result {
	opts := baseOptions(seed)
	opts.YieldAt = append([]int64{}, yields...)
	return sim.Run(opts, prog)
}

// Finding is a bug-triggering configuration.
type Finding struct {
	Seed      int64
	Yields    []int64 // op indices of the forced yields, ascending
	Runs      int     // executions spent until this configuration
	Detection detect.Detection

	// Wakes are targeted wake-at-backtrack-point placements (op index →
	// goroutine dispatched next), set only by the DPOR explorer in wakes
	// mode. Together with Yields they form the finding's decision string.
	Wakes map[int64]trace.GoID
}

// String renders the finding.
func (f Finding) String() string {
	if len(f.Wakes) > 0 {
		return fmt.Sprintf("%s with decisions [%s] (after %d runs, seed %d)",
			f.Detection.Verdict, f.DecisionString(), f.Runs, f.Seed)
	}
	return fmt.Sprintf("%s with %d yield(s) at ops %v (after %d runs, seed %d)",
		f.Detection.Verdict, len(f.Yields), f.Yields, f.Runs, f.Seed)
}

// DecisionString renders the placement as a portable decision string:
// "base" for the empty placement, otherwise comma-joined terms in op
// order — "y<op>" for a plain forced yield, "w<op>:g<id>" for a targeted
// wake. The string fully determines the schedule given (prog, seed), so
// it is the replayable reproducer the DPOR explorer verifies findings
// with (see Replay).
func (f Finding) DecisionString() string {
	type term struct {
		op   int64
		text string
	}
	terms := make([]term, 0, len(f.Yields)+len(f.Wakes))
	for _, op := range f.Yields {
		terms = append(terms, term{op, fmt.Sprintf("y%d", op)})
	}
	for op, g := range f.Wakes {
		terms = append(terms, term{op, fmt.Sprintf("w%d:g%d", op, g)})
	}
	if len(terms) == 0 {
		return "base"
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].op < terms[j].op })
	out := terms[0].text
	for _, t := range terms[1:] {
		out += "," + t.text
	}
	return out
}

// Replay re-executes the finding's exact schedule and returns the
// result: the deterministic substrate guarantees the run reproduces the
// recorded detection, which is how equivalence gates verify a finding
// without trusting the explorer that produced it.
func (f Finding) Replay(prog func(*sim.G)) *sim.Result {
	opts := baseOptions(f.Seed)
	opts.YieldAt = append([]int64{}, f.Yields...)
	if len(f.Wakes) > 0 {
		opts.WakeAt = make(map[int64]trace.GoID, len(f.Wakes))
		for op, g := range f.Wakes {
			opts.WakeAt[op] = g
		}
	}
	return sim.Run(opts, prog)
}

// Explore searches yield placements within the bound for a configuration
// that makes GoAT report a bug. It returns nil when the budget is spent
// without a detection (including when the base schedule is already buggy —
// then the empty placement is the finding).
func Explore(prog func(*sim.G), cfg Config) *Finding {
	goat := detect.Goat{}
	runs := 0
	defer func() {
		if telemetry.Enabled() {
			telemetry.SysPlacementsRun.Add(int64(runs))
		}
	}()
	try := func(yields []int64) *Finding {
		runs++
		r := runWith(prog, cfg.Seed, yields)
		if d := goat.Detect(r); d.Found {
			sorted := append([]int64{}, yields...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			return &Finding{Seed: cfg.Seed, Yields: sorted, Runs: runs, Detection: d}
		}
		return nil
	}

	// The base schedule first: a deterministic bug needs no yields.
	if f := try(nil); f != nil {
		return f
	}
	base := runWith(prog, cfg.Seed, nil)
	n := int64(base.Ops)
	if n == 0 {
		return nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Exhaustive single-yield sweep while the budget lasts; it subsumes
	// random sampling for D=1 and finds most narrow windows immediately.
	for op := int64(1); op <= n && runs < cfg.maxRuns(); op++ {
		if f := try([]int64{op}); f != nil {
			return f
		}
	}
	// Random placements of 2..D yields (bounded by the op count: a
	// program with N ops admits at most N distinct yield points).
	maxK := cfg.maxYields()
	if int64(maxK) > n {
		maxK = int(n)
	}
	if maxK < 2 {
		return nil
	}
	for runs < cfg.maxRuns() {
		k := 2 + rng.Intn(maxK-1)
		set := map[int64]bool{}
		for len(set) < k {
			set[1+rng.Int63n(n)] = true
		}
		yields := make([]int64, 0, k)
		for op := range set {
			yields = append(yields, op)
		}
		if f := try(yields); f != nil {
			return f
		}
	}
	return nil
}

// Minimize shrinks a bug-triggering yield placement to a locally minimal
// one (removing any single yield loses the bug), preserving the verdict
// class. It is the ddmin-style reducer applied to schedule debugging.
func Minimize(prog func(*sim.G), f *Finding) *Finding {
	goat := detect.Goat{}
	reproduces := func(yields []int64) bool {
		r := runWith(prog, f.Seed, yields)
		d := goat.Detect(r)
		return d.Found
	}
	cur := append([]int64{}, f.Yields...)
	runs := 0
	for {
		removed := false
		for i := 0; i < len(cur); i++ {
			cand := append(append([]int64{}, cur[:i]...), cur[i+1:]...)
			runs++
			if reproduces(cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}
	r := runWith(prog, f.Seed, cur)
	return &Finding{
		Seed:      f.Seed,
		Yields:    cur,
		Runs:      f.Runs + runs,
		Detection: (detect.Goat{}).Detect(r),
	}
}
