package systematic

import (
	"strings"
	"testing"

	"goat/internal/goker"
	"goat/internal/sim"
)

func kernelMain(t *testing.T, id string) func(*sim.G) {
	t.Helper()
	k, ok := goker.ByID(id)
	if !ok {
		t.Fatalf("kernel %s missing", id)
	}
	return k.Main
}

func TestSystematicModeDeterministic(t *testing.T) {
	prog := kernelMain(t, "etcd_7443")
	a := runWith(prog, 1, []int64{5, 9})
	b := runWith(prog, 1, []int64{5, 9})
	if a.Trace.String() != b.Trace.String() {
		t.Fatal("systematic runs with identical placement diverged")
	}
	c := runWith(prog, 1, []int64{6, 9})
	if a.Outcome != c.Outcome && a.Trace.String() == c.Trace.String() {
		t.Fatal("different placements produced inconsistent results")
	}
}

func TestYieldAtFiresExactly(t *testing.T) {
	// A program with a known op count: each Handler call is one op.
	var r *sim.Result
	opts := baseOptions(0)
	opts.YieldAt = []int64{2, 4}
	r = sim.Run(opts, func(g *sim.G) {
		for i := 0; i < 6; i++ {
			g.Handler("f.go", i)
		}
	})
	scheds := 0
	for _, e := range r.Trace.Events {
		if e.Type.String() == "GoSched" {
			scheds++
		}
	}
	if scheds != 2 {
		t.Fatalf("forced yields = %d, want exactly 2", scheds)
	}
	if r.Ops != 6 {
		t.Fatalf("ops = %d, want 6", r.Ops)
	}
}

func TestExploreFindsDeterministicBugWithNoYields(t *testing.T) {
	f := Explore(kernelMain(t, "moby_33293"), Config{})
	if f == nil {
		t.Fatal("deterministic leak not found")
	}
	if len(f.Yields) != 0 {
		t.Fatalf("deterministic bug needed yields: %v", f.Yields)
	}
	if f.Runs != 1 {
		t.Fatalf("base schedule should suffice, took %d runs", f.Runs)
	}
}

func TestExploreFindsRacyBugWithFewYields(t *testing.T) {
	// The paper's abstract: the schedule-yielding method detects the
	// benchmark's rare bugs with less than three yields.
	for _, id := range []string{"moby_28462", "serving_2137", "moby_30408"} {
		f := Explore(kernelMain(t, id), Config{Seed: 1, MaxRuns: 4000})
		if f == nil {
			t.Errorf("%s: no bug-triggering placement within budget", id)
			continue
		}
		min := Minimize(kernelMain(t, id), f)
		if !min.Detection.Found {
			t.Errorf("%s: minimized placement lost the bug", id)
			continue
		}
		if len(min.Yields) >= 3 {
			t.Errorf("%s: minimal placement needs %d yields (%v), want < 3",
				id, len(min.Yields), min.Yields)
		}
		t.Logf("%s: %s", id, min)
	}
}

func TestMinimizeIsLocallyMinimal(t *testing.T) {
	prog := kernelMain(t, "moby_28462")
	f := Explore(prog, Config{Seed: 2, MaxRuns: 4000})
	if f == nil {
		t.Skip("no finding under this seed")
	}
	min := Minimize(prog, f)
	// Removing any remaining yield must lose the bug.
	for i := range min.Yields {
		cand := append(append([]int64{}, min.Yields[:i]...), min.Yields[i+1:]...)
		r := runWith(prog, min.Seed, cand)
		if r.Outcome.Buggy() {
			t.Fatalf("placement %v still buggy without yield %d — not minimal", cand, min.Yields[i])
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Seed: 1, Yields: []int64{3, 7}, Runs: 12}
	f.Detection.Verdict = "PDL-2"
	s := f.String()
	for _, want := range []string{"PDL-2", "2 yield", "[3 7]", "12 runs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestExploreRespectsBudget(t *testing.T) {
	// A healthy program: the budget must bound the search.
	healthy := func(g *sim.G) {
		g.Go("w", func(c *sim.G) { c.HandlerHere() })
		g.Yield()
	}
	f := Explore(healthy, Config{MaxRuns: 50})
	if f != nil {
		t.Fatalf("healthy program reported buggy: %v", f)
	}
}
