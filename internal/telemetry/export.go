package telemetry

import (
	"goat/internal/trace"
)

// ChromeSpans converts telemetry spans to the Chrome exporter's span
// track set (nanosecond phases → microsecond timeline slices, with
// sub-microsecond phases kept visible at 1µs).
func ChromeSpans(spans []Span) []trace.ChromeSpan {
	out := make([]trace.ChromeSpan, 0, len(spans))
	for _, s := range spans {
		cs := trace.ChromeSpan{
			Track:   s.Track,
			Name:    s.Name,
			StartUs: s.Start.Microseconds(),
			DurUs:   s.Dur.Microseconds(),
		}
		if cs.DurUs < 1 {
			cs.DurUs = 1
		}
		out = append(out, cs)
	}
	return out
}
