package telemetry

// Default is the process-wide registry the campaign pipeline reports
// into. It starts disabled, so the instrumented hot paths cost one
// atomic load per update site until a CLI flag (goat -timeline,
// goatbench -telemetry/-metrics) or a test enables it.
var Default = New()

// Enable turns the default registry on.
func Enable() { Default.Enable() }

// Disable turns the default registry off.
func Disable() { Default.Disable() }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return Default.Enabled() }

// Pre-registered handles for every instrumented layer of the pipeline.
// Keeping them as package variables makes the update sites allocation-
// and lookup-free.
var (
	// Virtual runtime (internal/sim): batched once per execution.
	SimRuns       = Default.Counter("sim.runs")
	SimDispatches = Default.Counter("sim.dispatches")
	SimOps        = Default.Counter("sim.ops")
	SimYields     = Default.Counter("sim.yields_injected")
	SimOpsPerRun  = Default.Histogram("sim.ops_per_run", CountBuckets)

	// Campaign engine (internal/engine).
	EngineRuns       = Default.Counter("engine.runs")
	EngineEarlyStops = Default.Counter("engine.early_stops")
	EngineRunWall    = Default.Histogram("engine.run_wall_ns", DurationBuckets)
	EnginePoolGets   = Default.Counter("engine.pool_gets")
	EnginePoolHits   = Default.Counter("engine.pool_hits")

	// ECT stream (telemetry.Sink riding the trace.Sink chain).
	ECTEvents = Default.Counter("ect.events")

	// Online detectors (internal/detect).
	DetectEvents      = Default.Counter("detect.events")
	DetectDetections  = Default.Counter("detect.detections")
	DetectStopLatency = Default.Histogram("detect.stop_latency_events", CountBuckets)

	// Systematic explorer (internal/systematic).
	SysPlacementsRun    = Default.Counter("systematic.placements_run")
	SysPlacementsPruned = Default.Counter("systematic.placements_pruned")
	SysDPORBacktracks   = Default.Counter("systematic.dpor_backtracks")
	SysDPORSleepHits    = Default.Counter("systematic.dpor_sleep_hits")

	// Evaluation harness (internal/harness).
	HarnessCells      = Default.Counter("harness.cells")
	HarnessDetections = Default.Counter("harness.detections")
	HarnessExecs      = Default.Counter("harness.execs")
	HarnessCellWall   = Default.Histogram("harness.cell_wall_ns", DurationBuckets)
	HarnessFlightRecs = Default.Counter("harness.flightrec_dumps")

	// Distributed campaign fabric (internal/fabric).
	FabricLeases        = Default.Counter("fabric.leases")
	FabricLeaseExpiries = Default.Counter("fabric.lease_expiries")
	FabricCellsMerged   = Default.Counter("fabric.cells_merged")
	FabricPoisoned      = Default.Counter("fabric.poisoned_cells")
	FabricWorkerCells   = Default.Counter("fabric.worker_cells")
)
