package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live campaign reporter behind `goatbench -telemetry`:
// the harness ticks it per completed cell, a background ticker renders
// periodic one-line status reports (cells done, runs/s, detections so
// far, ETA) without ever blocking the campaign.
type Progress struct {
	Total int // total cells the campaign will evaluate

	done  atomic.Int64
	found atomic.Int64
	start time.Time
}

// NewProgress returns a reporter for a campaign of total cells.
func NewProgress(total int) *Progress {
	return &Progress{Total: total, start: time.Now()}
}

// CellDone records one completed cell.
func (p *Progress) CellDone(found bool) {
	p.done.Add(1)
	if found {
		p.found.Add(1)
	}
}

// Line renders the current status as a single line (no newline): cells
// done, percentage, executions and runs/s from the default registry's
// sim.runs counter, detections so far, and the ETA extrapolated from
// the per-cell completion rate.
func (p *Progress) Line() string {
	done := p.done.Load()
	found := p.found.Load()
	elapsed := time.Since(p.start)
	runs := SimRuns.Value()
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(runs) / s
	}
	eta := "?"
	if done > 0 && p.Total > 0 {
		left := time.Duration(float64(elapsed) / float64(done) * float64(int64(p.Total)-done))
		eta = left.Round(time.Second).String()
	}
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(done) / float64(p.Total)
	}
	return fmt.Sprintf("telemetry: %d/%d cells (%.0f%%), %d runs, %.0f runs/s, %d detections, ETA %s",
		done, p.Total, pct, runs, rate, found, eta)
}

// Start launches the periodic reporter: every interval it writes Line to
// w. The returned stop function halts the ticker and writes one final
// line; it is safe to call exactly once.
func (p *Progress) Start(w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 5 * time.Second
	}
	quit := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, p.Line())
			case <-quit:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(quit)
			wg.Wait()
			fmt.Fprintln(w, p.Line())
		})
	}
}
