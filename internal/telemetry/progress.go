package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live campaign reporter behind `goatbench -telemetry`:
// the harness ticks it per completed cell, a background ticker renders
// periodic one-line status reports (cells done, runs/s, detections so
// far, ETA) without ever blocking the campaign.
type Progress struct {
	Total int // total cells the campaign will evaluate

	done  atomic.Int64
	found atomic.Int64
	start time.Time

	// workers tallies cells per completing worker (CellDoneBy); the
	// distributed fabric's coordinator feeds it so one live line carries
	// the whole fleet's shard progress. Key: worker name, value:
	// *atomic.Int64 cell count.
	workers sync.Map
}

// NewProgress returns a reporter for a campaign of total cells.
func NewProgress(total int) *Progress {
	return &Progress{Total: total, start: time.Now()}
}

// CellDone records one completed cell.
func (p *Progress) CellDone(found bool) {
	p.done.Add(1)
	if found {
		p.found.Add(1)
	}
}

// CellDoneBy records one completed cell attributed to a named worker;
// Line then carries a per-worker breakdown. Safe for concurrent use.
func (p *Progress) CellDoneBy(worker string, found bool) {
	p.CellDone(found)
	v, _ := p.workers.LoadOrStore(worker, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

// workerBreakdown renders the per-worker cell tallies, sorted by worker
// name ("" when no cell was attributed to a worker).
func (p *Progress) workerBreakdown() string {
	type wc struct {
		name string
		n    int64
	}
	var ws []wc
	p.workers.Range(func(k, v any) bool {
		ws = append(ws, wc{k.(string), v.(*atomic.Int64).Load()})
		return true
	})
	if len(ws) == 0 {
		return ""
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].name < ws[j].name })
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = fmt.Sprintf("%s:%d", w.name, w.n)
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// Line renders the current status as a single line (no newline): cells
// done, percentage, executions and runs/s from the default registry's
// sim.runs counter, detections so far, and the ETA extrapolated from
// the per-cell completion rate.
func (p *Progress) Line() string {
	done := p.done.Load()
	found := p.found.Load()
	elapsed := time.Since(p.start)
	runs := SimRuns.Value()
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(runs) / s
	}
	eta := "?"
	if done > 0 && p.Total > 0 {
		left := time.Duration(float64(elapsed) / float64(done) * float64(int64(p.Total)-done))
		eta = left.Round(time.Second).String()
	}
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(done) / float64(p.Total)
	}
	return fmt.Sprintf("telemetry: %d/%d cells (%.0f%%), %d runs, %.0f runs/s, %d detections, ETA %s",
		done, p.Total, pct, runs, rate, found, eta) + p.workerBreakdown()
}

// Start launches the periodic reporter: every interval it writes Line to
// w. The returned stop function halts the ticker and writes one final
// line; it is safe to call exactly once.
func (p *Progress) Start(w io.Writer, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 5 * time.Second
	}
	quit := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, p.Line())
			case <-quit:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(quit)
			wg.Wait()
			fmt.Fprintln(w, p.Line())
		})
	}
}
