// Package telemetry is the observability substrate of the campaign
// pipeline: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms), a span clock for phase timing, and an ECT
// event sink that rides the trace.Sink chain.
//
// The registry is built for a hot deterministic pipeline: metric handles
// are plain pointers obtained once, every update is a single atomic
// operation guarded by the registry's enabled flag (one atomic load and
// a predictable branch when disabled), and nothing in this package ever
// draws a scheduling decision or perturbs the virtual runtime — record
// and replay stay byte-identical with telemetry on or off. Instrumented
// code either checks Enabled() once per run and batches its updates, or
// calls the handles directly and lets the guard absorb the call.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add increments the counter by n when the owning registry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions.
type Gauge struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Set stores v when the owning registry is enabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n when the owning registry is enabled.
func (g *Gauge) Add(n int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: bounds are inclusive upper
// bucket edges (sorted ascending) with an implicit overflow bucket. The
// fixed layout keeps Observe allocation-free and snapshot/merge trivial.
type Histogram struct {
	on     *atomic.Bool
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// Observe records one value when the owning registry is enabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.on.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. P50/P95/P99 are
// the bucket-resolution quantile summaries (see Quantile) every
// exporter shares — the JSON dump, the Prometheus text endpoint, and
// the latency oracles all report the same numbers.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    int64   `json:"p50"`
	P95    int64   `json:"p95"`
	P99    int64   `json:"p99"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.P50 = s.Quantile(0.50)
		s.P95 = s.Quantile(0.95)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// QuantileExact returns the exact nearest-rank q-quantile (0 < q <= 1)
// of raw samples: the smallest value whose rank is >= ceil(q*n). The
// slice is sorted in place. This is the reference the bucketed
// HistSnapshot.Quantile approximates, and what the latency oracles use
// when they hold every sample.
func QuantileExact(samples []int64, q float64) int64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := int(q*float64(n) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return samples[rank-1]
}

// Mean returns the arithmetic mean of the observed values (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// the upper bound of the bucket holding the rank, clamped to the observed
// [Min, Max] so p100 is exact and estimates never leave the data range.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			var est int64
			if i < len(s.Bounds) {
				est = s.Bounds[i]
			} else {
				est = s.Max
			}
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}

// Registry holds named metrics. Handles are created on first use and
// cached; lookups take the registry mutex, updates are lock-free.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    spanLog
}

// New returns an empty, disabled registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Enable turns metric collection on.
func (r *Registry) Enable() { r.enabled.Store(true) }

// Disable turns metric collection off; existing values are retained.
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds are ignored). Bounds must be
// sorted ascending; nil selects DurationBuckets.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = NewHistogram(&r.enabled, bounds)
		r.hists[name] = h
	}
	return h
}

// NewHistogram builds a standalone histogram gated on the given flag
// (pass an always-true flag for ungated use, e.g. report-side
// aggregation over already-collected samples).
func NewHistogram(on *atomic.Bool, bounds []int64) *Histogram {
	h := &Histogram{
		on:     on,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Reset zeroes every metric and clears the span log, keeping the handles
// (callers holding metric pointers stay valid). Benchmarks use it to
// separate phases.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
	}
	r.spans.reset()
}

// Snapshot is a point-in-time copy of every metric in a registry, the
// shape the -metrics JSON dump serializes. Map keys marshal in sorted
// order, so the export is deterministic for deterministic values.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Spans      []Span                  `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		Spans:      r.spans.snapshot(),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding snapshot: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DurationBuckets are the default bounds for wall-time histograms, in
// nanoseconds: 1µs to 30s in a 1-2-5 ladder.
var DurationBuckets = []int64{
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000,
	10_000_000_000, 30_000_000_000,
}

// CountBuckets are the default bounds for event/op-count histograms:
// 1 to 1M in a 1-2-5 ladder.
var CountBuckets = []int64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000,
}
