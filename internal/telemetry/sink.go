package telemetry

import (
	"goat/internal/trace"
)

// catCounters maps trace.Category ordinals to per-category event
// counters on the default registry, pre-registered so the flush in
// Sink.Close is lookup-free.
var catCounters = [...]*Counter{
	trace.CatNone:      Default.Counter("ect.events.none"),
	trace.CatGoroutine: Default.Counter("ect.events.goroutine"),
	trace.CatChannel:   Default.Counter("ect.events.channel"),
	trace.CatSync:      Default.Counter("ect.events.sync"),
	trace.CatSelect:    Default.Counter("ect.events.select"),
	trace.CatTimer:     Default.Counter("ect.events.timer"),
	trace.CatUser:      Default.Counter("ect.events.user"),
	trace.CatShared:    Default.Counter("ect.events.shared"),
	trace.CatFault:     Default.Counter("ect.events.fault"),
}

// Sink observes an execution's event stream for the metrics registry: it
// joins the trace.Sink chain (a member of the MultiSink / Options.Sinks)
// and tallies events per category. Counts are kept in plain locals and
// flushed to the registry's atomic counters at Close, so the per-event
// cost is one array increment and the sink is reusable across the runs
// of a campaign (each Close flushes and rearms).
//
// A Sink only reads events — it never draws scheduling decisions and
// never requests a stop — so attaching it leaves the ECT and any
// record/replay script byte-identical.
type Sink struct {
	byCat [len(catCounters)]int64
	total int64
}

// NewSink returns a sink reporting into the default registry.
func NewSink() *Sink { return &Sink{} }

// Event implements trace.Sink.
func (s *Sink) Event(e trace.Event) {
	s.byCat[trace.CategoryOf(e.Type)]++
	s.total++
}

// Close implements trace.Sink: flush this run's tallies and rearm.
func (s *Sink) Close() {
	if s.total == 0 {
		return
	}
	ECTEvents.Add(s.total)
	for cat, n := range s.byCat {
		if n != 0 {
			catCounters[cat].Add(n)
			s.byCat[cat] = 0
		}
	}
	s.total = 0
}
