package telemetry

import (
	"time"
)

// Span is one timed phase of a campaign, relative to the registry's
// epoch (the first span started after New/Reset). Track groups spans
// onto one timeline row in the Chrome export.
type Span struct {
	Track string        `json:"track"`
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// spanLog is the span clock's storage, guarded by the registry mutex.
type spanLog struct {
	epoch time.Time
	spans []Span
}

func (l *spanLog) reset() {
	l.epoch = time.Time{}
	l.spans = nil
}

func (l *spanLog) snapshot() []Span {
	return append([]Span(nil), l.spans...)
}

// Span starts a timed phase and returns the function that ends it. With
// the registry disabled both ends are no-ops. Safe for concurrent use;
// the span is recorded when the returned func runs.
//
//	defer reg.Span("campaign", "table4")()
func (r *Registry) Span(track, name string) func() {
	if !r.Enabled() {
		return func() {}
	}
	r.mu.Lock()
	if r.spans.epoch.IsZero() {
		r.spans.epoch = time.Now()
	}
	epoch := r.spans.epoch
	r.mu.Unlock()
	start := time.Since(epoch)
	return func() {
		end := time.Since(epoch)
		r.mu.Lock()
		r.spans.spans = append(r.spans.spans, Span{
			Track: track, Name: name, Start: start, Dur: end - start,
		})
		r.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (r *Registry) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.snapshot()
}
