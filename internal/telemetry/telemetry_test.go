package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"goat/internal/trace"
)

func TestCounterGatedOnEnable(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter moved: %d", got)
	}
	r.Enable()
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	r.Disable()
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter moved while disabled: %d", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter is not idempotent per name")
	}
}

func TestGauge(t *testing.T) {
	r := New()
	r.Enable()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestHistogramSnapshotAndQuantiles(t *testing.T) {
	r := New()
	r.Enable()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{3, 7, 40, 41, 900, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Min != 3 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d, want 3/5000", s.Min, s.Max)
	}
	if s.Sum != 3+7+40+41+900+5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	wantCounts := []int64{2, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	// p50 lands in the second bucket (upper bound 100); p100 is the max.
	if q := s.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(1); q != 5000 {
		t.Fatalf("p100 = %d, want 5000", q)
	}
	// Quantile estimates never leave the observed range.
	if q := s.Quantile(0.01); q < s.Min || q > s.Max {
		t.Fatalf("p1 = %d outside [%d, %d]", q, s.Min, s.Max)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// The summary fields are the same bucket-resolution quantiles, filled
	// at snapshot time so every exporter reports identical numbers.
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Fatalf("summary fields %d/%d/%d disagree with Quantile %d/%d/%d",
			s.P50, s.P95, s.P99, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
	}
}

func TestQuantileExact(t *testing.T) {
	// Nearest rank over 1..100: p-th percentile is exactly p.
	samples := make([]int64, 0, 100)
	for v := int64(100); v >= 1; v-- { // reversed: the sort is part of the contract
		samples = append(samples, v)
	}
	for _, c := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}, {0.001, 1}} {
		if got := QuantileExact(samples, c.q); got != c.want {
			t.Errorf("QuantileExact(1..100, %v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := QuantileExact(nil, 0.5); got != 0 {
		t.Errorf("QuantileExact(nil) = %d, want 0", got)
	}
	if got := QuantileExact([]int64{7}, 0.99); got != 7 {
		t.Errorf("single-sample p99 = %d, want 7", got)
	}
	// ceil semantics: with 4 samples, p50 is the 2nd order statistic.
	if got := QuantileExact([]int64{40, 10, 30, 20}, 0.5); got != 20 {
		t.Errorf("p50 of {10,20,30,40} = %d, want 20 (nearest rank)", got)
	}
}

func TestRegistryResetKeepsHandles(t *testing.T) {
	r := New()
	r.Enable()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{10})
	c.Inc()
	h.Observe(5)
	r.Reset()
	if c.Value() != 0 {
		t.Fatal("counter not reset")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Min != 0 {
		t.Fatalf("histogram not reset: %+v", s)
	}
	c.Inc()
	h.Observe(20)
	if c.Value() != 1 || h.Snapshot().Max != 20 {
		t.Fatal("handles dead after reset")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	r.Enable()
	c := r.Counter("n")
	h := r.Histogram("h", []int64{50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	s := h.Snapshot()
	if s.Count != 8000 || s.Min != 0 || s.Max != 99 {
		t.Fatalf("histogram = %+v", s)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := New()
	r.Enable()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h", []int64{10}).Observe(4)
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshot JSON is nondeterministic")
	}
	if !json.Valid(b1.Bytes()) {
		t.Fatal("snapshot JSON invalid")
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 {
		t.Fatalf("round-tripped counters: %+v", s.Counters)
	}
}

func TestSpanClock(t *testing.T) {
	r := New()
	end := r.Span("campaign", "ignored-while-disabled")
	end()
	if got := r.Spans(); len(got) != 0 {
		t.Fatalf("disabled registry recorded spans: %v", got)
	}
	r.Enable()
	endOuter := r.Span("campaign", "outer")
	endInner := r.Span("campaign", "inner")
	endInner()
	endOuter()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: inner first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("span order: %v", spans)
	}
	if spans[1].Start > spans[0].Start {
		t.Fatal("outer must start before inner")
	}
	if spans[0].Dur < 0 || spans[1].Dur < spans[0].Dur {
		t.Fatalf("durations inconsistent: %v", spans)
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("Reset did not clear spans")
	}
}

func TestSinkCountsByCategory(t *testing.T) {
	Default.Reset()
	Enable()
	defer func() { Disable(); Default.Reset() }()
	s := NewSink()
	s.Event(trace.Event{Ts: 1, G: 1, Type: trace.EvGoCreate, Peer: 2})
	s.Event(trace.Event{Ts: 2, G: 2, Type: trace.EvChanSend, Res: 1})
	s.Event(trace.Event{Ts: 3, G: 2, Type: trace.EvChanRecv, Res: 1})
	s.Event(trace.Event{Ts: 4, G: 1, Type: trace.EvMutexLock, Res: 2})
	// Nothing hits the registry until the run closes.
	if ECTEvents.Value() != 0 {
		t.Fatal("sink flushed before Close")
	}
	s.Close()
	if got := ECTEvents.Value(); got != 4 {
		t.Fatalf("ect.events = %d, want 4", got)
	}
	if got := Default.Counter("ect.events.channel").Value(); got != 2 {
		t.Fatalf("channel events = %d, want 2", got)
	}
	if got := Default.Counter("ect.events.goroutine").Value(); got != 1 {
		t.Fatalf("goroutine events = %d, want 1", got)
	}
	// Close rearms: a second run's events accumulate on top.
	s.Event(trace.Event{Ts: 1, G: 1, Type: trace.EvWgWait})
	s.Close()
	s.Close() // idempotent when empty
	if got := ECTEvents.Value(); got != 5 {
		t.Fatalf("ect.events after second run = %d, want 5", got)
	}
}

func TestProgressLine(t *testing.T) {
	Default.Reset()
	p := NewProgress(10)
	p.CellDone(true)
	p.CellDone(false)
	line := p.Line()
	for _, want := range []string{"2/10 cells", "1 detections", "ETA"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
	var buf bytes.Buffer
	stop := p.Start(&buf, time.Hour)
	stop()
	if !strings.Contains(buf.String(), "2/10 cells") {
		t.Fatalf("final line missing: %q", buf.String())
	}
}

func TestProgressWorkerBreakdown(t *testing.T) {
	Default.Reset()
	p := NewProgress(6)
	p.CellDoneBy("w2", true)
	p.CellDoneBy("w1", false)
	p.CellDoneBy("w1", true)
	line := p.Line()
	for _, want := range []string{"3/6 cells", "2 detections", "[w1:2 w2:1]"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
	// Concurrent attribution must not race or lose counts.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.CellDoneBy("wc", false)
			}
		}()
	}
	wg.Wait()
	if !strings.Contains(p.Line(), "wc:400") {
		t.Fatalf("concurrent tallies lost: %q", p.Line())
	}
}
