package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: renders an ECT as the JSON object format
// consumed by Perfetto (ui.perfetto.dev) and chrome://tracing, the
// substitute for the patched-runtime artifact's `go tool trace` view.
//
// Mapping:
//   - process 1 is the execution; each goroutine is one thread (track),
//     named "g<id> <name>" and sorted by goroutine ID.
//   - every ECT event is exactly one complete ("X") slice carrying its
//     logical timestamp in args.ect_ts; one logical tick renders as one
//     microsecond.
//   - EvGoBlock slices span the whole blocked region — from the park to
//     the goroutine's next own event (or the end of the trace if it
//     never ran again) — and are named "block:<reason>".
//   - GoCreate and GoUnblock edges render as flow arrows from the
//     creating/unblocking slice to the child's first / the woken
//     goroutine's next slice.
//   - injected-fault events and panics are color-highlighted.
//   - process 2 carries the optional second track set: campaign
//     telemetry spans (Options.Spans), one thread per span track.
//
// The output is deterministic for a fixed trace: slices follow trace
// order, metadata follows sorted goroutine order, and args marshal as
// sorted-key JSON objects.

// ChromeSpan is one phase span on the campaign track set of a Chrome
// export (converted from telemetry spans by the caller, so this package
// stays free of telemetry dependencies).
type ChromeSpan struct {
	Track   string // timeline row (thread) the span renders on
	Name    string // slice label
	StartUs int64
	DurUs   int64
}

// ChromeOptions configure a Chrome export.
type ChromeOptions struct {
	// Dropped is the flight-recorder drop count: when positive, the
	// export opens with a metadata event recording how many events were
	// overwritten before the ring window (so a truncated timeline is
	// never mistaken for a complete one).
	Dropped int64
	// Spans is the second track set: campaign telemetry phases rendered
	// as process 2.
	Spans []ChromeSpan
}

// chromeEvent is one entry of the traceEvents array. Field order and
// omitempty choices are part of the golden-tested output format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	ID    int64          `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	chromePidECT   = 1
	chromePidSpans = 2
)

// EncodeChrome writes the trace as Chrome trace-event JSON.
func (t *Trace) EncodeChrome(w io.Writer, opts ChromeOptions) error {
	evs := make([]chromeEvent, 0, 3*len(t.Events)+16)

	if opts.Dropped > 0 {
		evs = append(evs, chromeEvent{
			Name: "flight_recorder", Ph: "M", Pid: chromePidECT,
			Args: map[string]any{"dropped_events": opts.Dropped},
		})
	}
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePidECT,
		Args: map[string]any{"name": "ECT (execution concurrency trace)"},
	})

	// Thread metadata: one track per goroutine, in sorted-ID order.
	names := map[GoID]string{1: "main"}
	for _, e := range t.Events {
		if e.Type == EvGoCreate && e.Str != "" {
			names[e.Peer] = e.Str
		}
	}
	for _, g := range t.Goroutines() {
		label := fmt.Sprintf("g%d", g)
		if n := names[g]; n != "" {
			label += " " + n
		}
		evs = append(evs,
			chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePidECT, Tid: int64(g),
				Args: map[string]any{"name": label}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: chromePidECT, Tid: int64(g),
				Args: map[string]any{"sort_index": int64(g)}},
		)
	}

	// nextOwn[i]: timestamp of the next event by the same goroutine
	// (0 = none); firstTs[g]: timestamp of g's first event.
	nextOwn := make([]int64, len(t.Events))
	lastSeen := map[GoID]int64{}
	for i := len(t.Events) - 1; i >= 0; i-- {
		e := t.Events[i]
		nextOwn[i] = lastSeen[e.G]
		lastSeen[e.G] = e.Ts
	}
	// tsByG: each goroutine's own timestamps in trace order, for the
	// flow-arrow destination lookups (binary search instead of rescans).
	tsByG := map[GoID][]int64{}
	for _, e := range t.Events {
		tsByG[e.G] = append(tsByG[e.G], e.Ts)
	}
	var endTs int64
	if n := len(t.Events); n > 0 {
		endTs = t.Events[n-1].Ts + 1
	}

	for i, e := range t.Events {
		evs = append(evs, chromeSlice(e, nextOwn[i], endTs))
		// Flow arrows: creation and wakeup edges, each pointing at the
		// peer's first own slice after the edge.
		if (e.Type == EvGoCreate || e.Type == EvGoUnblock) && e.Peer != 0 {
			if dst := firstTsAfter(tsByG[e.Peer], e.Ts); dst > 0 {
				name := "create"
				if e.Type == EvGoUnblock {
					name = "unblock"
				}
				evs = append(evs, flowPair(name, e.Ts, int64(e.G), dst, int64(e.Peer))...)
			}
		}
	}

	evs = append(evs, spanEvents(opts.Spans)...)

	b, err := json.MarshalIndent(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"}, "", " ")
	if err != nil {
		return fmt.Errorf("trace: encoding chrome export: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// chromeSlice renders one ECT event as its timeline slice.
func chromeSlice(e Event, nextOwnTs, endTs int64) chromeEvent {
	ce := chromeEvent{
		Name: e.Type.String(),
		Cat:  CategoryOf(e.Type).String(),
		Ph:   "X",
		Ts:   e.Ts,
		Dur:  1,
		Pid:  chromePidECT,
		Tid:  int64(e.G),
		Args: map[string]any{"ect_ts": e.Ts},
	}
	if e.File != "" {
		ce.Args["src"] = fmt.Sprintf("%s:%d", e.File, e.Line)
	}
	if e.Res != 0 {
		ce.Args["res"] = int64(e.Res)
	}
	if e.Peer != 0 {
		ce.Args["peer"] = int64(e.Peer)
	}
	if e.Blocked {
		ce.Args["blocked"] = true
	}
	if e.Str != "" {
		ce.Args["str"] = e.Str
	}
	switch {
	case e.Type == EvGoBlock:
		ce.Name = "block:" + e.BlockReason().String()
		ce.Cname = "grey"
		ce.Args["reason"] = e.BlockReason().String()
		wake := nextOwnTs
		if wake == 0 {
			wake = endTs
			ce.Args["unresolved"] = true // still parked when the world stopped
		}
		if d := wake - e.Ts; d > 1 {
			ce.Dur = d
		}
	case CategoryOf(e.Type) == CatFault:
		ce.Cname = "terrible"
		if e.Aux != 0 {
			ce.Args["aux"] = e.Aux
		}
	case e.Type == EvGoPanic:
		ce.Cname = "bad"
	default:
		if e.Aux != 0 {
			ce.Args["aux"] = e.Aux
		}
	}
	return ce
}

// flowPair emits the start/finish halves of one flow arrow. The flow ID
// is the source timestamp, unique because ECT timestamps are.
func flowPair(name string, srcTs, srcTid, dstTs, dstTid int64) []chromeEvent {
	return []chromeEvent{
		{Name: name, Cat: "flow", Ph: "s", Ts: srcTs, Pid: chromePidECT, Tid: srcTid, ID: srcTs},
		{Name: name, Cat: "flow", Ph: "f", BP: "e", Ts: dstTs, Pid: chromePidECT, Tid: dstTid, ID: srcTs},
	}
}

// firstTsAfter returns the first timestamp in ts (sorted ascending)
// strictly greater than after, or 0.
func firstTsAfter(ts []int64, after int64) int64 {
	i := sort.Search(len(ts), func(i int) bool { return ts[i] > after })
	if i == len(ts) {
		return 0
	}
	return ts[i]
}

// spanEvents renders the campaign telemetry track set (process 2): one
// thread per distinct track, in order of first appearance.
func spanEvents(spans []ChromeSpan) []chromeEvent {
	if len(spans) == 0 {
		return nil
	}
	evs := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: chromePidSpans,
		Args: map[string]any{"name": "campaign telemetry"},
	}}
	trackTid := map[string]int64{}
	var tracks []string
	for _, s := range spans {
		if _, ok := trackTid[s.Track]; !ok {
			trackTid[s.Track] = int64(len(tracks) + 1)
			tracks = append(tracks, s.Track)
		}
	}
	for _, track := range tracks {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePidSpans, Tid: trackTid[track],
			Args: map[string]any{"name": track},
		})
	}
	ordered := append([]ChromeSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartUs < ordered[j].StartUs })
	for _, s := range ordered {
		dur := s.DurUs
		if dur < 1 {
			dur = 1
		}
		evs = append(evs, chromeEvent{
			Name: s.Name, Cat: "span", Ph: "X", Ts: s.StartUs, Dur: dur,
			Pid: chromePidSpans, Tid: trackTid[s.Track],
		})
	}
	return evs
}
