package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeChrome unmarshals an export back into the generic shape the
// assertions below inspect.
func decodeChrome(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	return file.TraceEvents
}

// chromeTestTrace exercises every exporter feature: creation + flow,
// blocking with a wake, blocking unresolved at trace end, a fault and a
// panic, and a named child goroutine.
func chromeTestTrace() *Trace {
	tr := New(16)
	tr.Append(Event{Ts: 1, G: 1, Type: EvGoCreate, Peer: 2, Str: "worker", File: "main.go", Line: 5})
	tr.Append(Event{Ts: 2, G: 1, Type: EvChanMake, Res: 1, Aux: 0})
	tr.Append(Event{Ts: 3, G: 2, Type: EvGoStart})
	tr.Append(Event{Ts: 4, G: 1, Type: EvGoBlock, Res: 1, Aux: int64(BlockRecv), File: "main.go", Line: 7})
	tr.Append(Event{Ts: 5, G: 2, Type: EvFaultStall, Aux: 2})
	tr.Append(Event{Ts: 6, G: 2, Type: EvGoUnblock, Peer: 1, Res: 1})
	tr.Append(Event{Ts: 7, G: 1, Type: EvChanRecv, Res: 1, Blocked: true})
	tr.Append(Event{Ts: 8, G: 2, Type: EvGoPanic, Str: "boom"})
	tr.Append(Event{Ts: 9, G: 1, Type: EvGoBlock, Res: 1, Aux: int64(BlockSend)})
	return tr
}

func TestChromeExportEventBijection(t *testing.T) {
	tr := chromeTestTrace()
	var buf bytes.Buffer
	if err := tr.EncodeChrome(&buf, ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())

	// Every ECT event appears exactly once as a timeline slice (the
	// slices are the entries carrying args.ect_ts); flows and metadata
	// carry none.
	seen := map[int64]int{}
	for _, ce := range evs {
		args, _ := ce["args"].(map[string]any)
		if args == nil {
			continue
		}
		if ts, ok := args["ect_ts"]; ok {
			if ce["ph"] != "X" {
				t.Fatalf("ect slice with ph %v", ce["ph"])
			}
			seen[int64(ts.(float64))]++
		}
	}
	if len(seen) != tr.Len() {
		t.Fatalf("%d distinct slices for %d events", len(seen), tr.Len())
	}
	for _, e := range tr.Events {
		if seen[e.Ts] != 1 {
			t.Fatalf("event ts=%d rendered %d times", e.Ts, seen[e.Ts])
		}
	}
}

func TestChromeExportRegionsFlowsAndColors(t *testing.T) {
	tr := chromeTestTrace()
	var buf bytes.Buffer
	if err := tr.EncodeChrome(&buf, ChromeOptions{
		Spans: []ChromeSpan{
			{Track: "campaign", Name: "run", StartUs: 0, DurUs: 40},
			{Track: "campaign", Name: "detect", StartUs: 40, DurUs: 5},
		},
	}); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())

	var blockDurs []float64
	var flows []map[string]any
	var spanSlices int
	cnames := map[string]string{}
	for _, ce := range evs {
		name := ce["name"].(string)
		switch {
		case strings.HasPrefix(name, "block:"):
			blockDurs = append(blockDurs, ce["dur"].(float64))
			if c, ok := ce["cname"].(string); ok {
				cnames[name] = c
			}
		case ce["cat"] == "flow":
			flows = append(flows, ce)
		case name == "FaultStall" || name == "GoPanic":
			cnames[name] = ce["cname"].(string)
		}
		if ce["pid"].(float64) == 2 && ce["ph"] == "X" {
			spanSlices++
		}
	}
	// g1 blocks at ts=4 and next runs at ts=7: a 3µs region. The second
	// block (ts=9) is unresolved and extends to trace end + 1.
	if len(blockDurs) != 2 || blockDurs[0] != 3 || blockDurs[1] != 1 {
		t.Fatalf("block durations = %v, want [3 1]", blockDurs)
	}
	// One create edge + one unblock edge, each a s/f pair with equal IDs.
	if len(flows) != 4 {
		t.Fatalf("%d flow events, want 4", len(flows))
	}
	byID := map[float64][]string{}
	for _, f := range flows {
		byID[f["id"].(float64)] = append(byID[f["id"].(float64)], f["ph"].(string))
	}
	for id, phs := range byID {
		if len(phs) != 2 || phs[0] != "s" || phs[1] != "f" {
			t.Fatalf("flow %v phases = %v", id, phs)
		}
	}
	if cnames["FaultStall"] != "terrible" {
		t.Fatalf("fault cname = %q", cnames["FaultStall"])
	}
	if cnames["GoPanic"] != "bad" {
		t.Fatalf("panic cname = %q", cnames["GoPanic"])
	}
	if spanSlices != 2 {
		t.Fatalf("%d span slices on pid 2, want 2", spanSlices)
	}
}

func TestChromeExportDroppedLeadsAndEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).EncodeChrome(&buf, ChromeOptions{Dropped: 17}); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())
	if len(evs) == 0 {
		t.Fatal("empty export")
	}
	first := evs[0]
	if first["name"] != "flight_recorder" || first["ph"] != "M" {
		t.Fatalf("first event = %v, want leading flight_recorder metadata", first)
	}
	args := first["args"].(map[string]any)
	if args["dropped_events"].(float64) != 17 {
		t.Fatalf("dropped_events = %v", args["dropped_events"])
	}
}

func TestChromeExportDeterministic(t *testing.T) {
	tr := chromeTestTrace()
	var b1, b2 bytes.Buffer
	if err := tr.EncodeChrome(&b1, ChromeOptions{Dropped: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeChrome(&b2, ChromeOptions{Dropped: 2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chrome export is nondeterministic")
	}
}

// FuzzChromeExport feeds arbitrary decoded traces to the Chrome
// exporter: any trace the binary codec accepts must export to valid
// JSON without panicking, including hostile goroutine IDs, timestamps
// out of order, and unknown-but-valid event payloads.
func FuzzChromeExport(f *testing.F) {
	for _, tr := range fuzzSeedTraces() {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			f.Fatalf("encoding seed trace: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.EncodeChrome(&buf, ChromeOptions{Dropped: 3}); err != nil {
			t.Fatalf("EncodeChrome failed on a decoded trace: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatal("chrome export is not valid JSON")
		}
	})
}
