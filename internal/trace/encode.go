package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic "GOATECT1" (8 bytes)
//	uint64 event count
//	per event: varint-encoded fields in a fixed order, strings as
//	(uvarint length, bytes).
//
// Traces whose producer is not the virtual runtime carry a source
// record, versioned by a second magic:
//
//	magic "GOATECT2" (8 bytes)
//	source name (uvarint length, bytes), source caps (uvarint)
//	uint64 event count + events as in GOATECT1
//
// Virtual-runtime traces keep encoding byte-identically to the original
// format: the source record is only written when there is one to write.
//
// The format is self-contained and versioned by the magic string.

const (
	magic   = "GOATECT1"
	magicV2 = "GOATECT2"
)

// Encode writes the trace to w in the binary ECT format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	head := magic
	if !t.Source.IsZero() && t.Source != SimSource {
		head = magicV2
	}
	if _, err := bw.WriteString(head); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if head == magicV2 {
		if err := putString(t.Source.Name); err != nil {
			return err
		}
		if err := putUvarint(uint64(t.Source.Caps)); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	for _, e := range t.Events {
		blocked := uint64(0)
		if e.Blocked {
			blocked = 1
		}
		for _, step := range []error{
			putVarint(e.Ts),
			putVarint(int64(e.G)),
			putUvarint(uint64(e.Type)),
			putString(e.File),
			putVarint(int64(e.Line)),
			putUvarint(uint64(e.Res)),
			putVarint(int64(e.Peer)),
			putVarint(e.Aux),
			putUvarint(blocked),
			putString(e.Str),
		} {
			if step != nil {
				return step
			}
		}
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode. Beyond the wire
// format it enforces the goroutine-introduction contract: every event
// must belong to a goroutine that already appeared in a GoCreate (as
// the child) or introduced itself with its own GoStart — a stream
// violating it would silently build a partial goroutine tree, so it is
// rejected with a clear error instead.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic && string(head) != magicV2 {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	getString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<24 {
			return "", fmt.Errorf("trace: string too long (%d)", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var src SourceInfo
	if string(head) == magicV2 {
		name, err := getString()
		if err != nil {
			return nil, fmt.Errorf("trace: reading source name: %w", err)
		}
		caps, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading source caps: %w", err)
		}
		src = SourceInfo{Name: name, Caps: Caps(caps)}
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	// Cap the preallocation: count is attacker-controlled in the sense
	// that a corrupt header must not force a gigantic up-front slice —
	// Append grows as real events actually arrive.
	prealloc := int(count)
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := New(prealloc)
	t.Source = src
	known := map[GoID]bool{1: true} // main exists implicitly
	for i := uint64(0); i < count; i++ {
		var e Event
		if e.Ts, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		g, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.G = GoID(g)
		typ, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.Type = Type(typ)
		if e.File, err = getString(); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		line, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.Line = int(line)
		res, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.Res = ResID(res)
		peer, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.Peer = GoID(peer)
		if e.Aux, err = binary.ReadVarint(br); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		blocked, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e.Blocked = blocked != 0
		if e.Str, err = getString(); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if e.Type == EvGoStart {
			known[e.G] = true
		}
		if e.G != 0 && !known[e.G] {
			return nil, fmt.Errorf("trace: event %d (%s) by goroutine g%d which never appeared in a GoCreate/GoStart", i, e.Type, e.G)
		}
		if e.Type == EvGoCreate {
			known[e.Peer] = true
		}
		t.Append(e)
	}
	return t, nil
}
