// Package trace defines the execution concurrency trace (ECT): a totally
// ordered sequence of events describing the dynamic behavior of the
// concurrent components of a program run.
//
// The event vocabulary mirrors the paper's enhanced runtime tracer: the
// standard goroutine lifecycle events (create, start, block, unblock, end,
// sched) extended with one event per concurrency-primitive action (channel
// send/recv/close, select, mutex lock/unlock, waitgroup, condition variable,
// once). Each event carries the goroutine that performed it, a logical
// timestamp, the source location of the corresponding statement (the
// concurrency usage, CU), and enough detail to decide the coverage
// classification of the action (blocked / unblocking / NOP).
package trace

import "fmt"

// GoID identifies a goroutine within one execution. The main goroutine is
// always GoID 1; 0 means "no goroutine" (e.g. no peer was unblocked).
type GoID int64

// ResID identifies a concurrency resource (channel, mutex, waitgroup, ...)
// within one execution. IDs are assigned in creation order and are stable
// for a fixed schedule.
type ResID uint64

// Type enumerates ECT event types.
type Type uint8

const (
	// EvNone is the zero Type; it never appears in a valid trace.
	EvNone Type = iota

	// Goroutine lifecycle events.
	EvGoCreate  // goroutine created; Peer = child GoID
	EvGoStart   // goroutine starts running for the first time
	EvGoEnd     // goroutine reached the end of its function
	EvGoSched   // goroutine yielded the processor (runtime.Gosched analogue)
	EvGoPreempt // goroutine was preempted by the scheduler
	EvGoBlock   // goroutine blocked; Aux = BlockReason
	EvGoUnblock // goroutine became runnable again
	EvGoPanic   // goroutine terminated by panic

	// Channel events.
	EvChanMake  // channel created; Aux = capacity
	EvChanSend  // send completed; Blocked records whether it parked first; Aux = AuxTryOp for TrySend
	EvChanRecv  // receive completed
	EvChanClose // channel closed

	// Select events.
	EvSelect     // select committed; Aux = chosen case index (-1 = default)
	EvSelectCase // one ready/chosen case; Aux = case index

	// Mutex / RWMutex events.
	EvMutexLock   // Lock acquired
	EvMutexUnlock // Unlock performed
	EvRWLock      // write lock acquired
	EvRWUnlock    // write unlock
	EvRLock       // read lock acquired
	EvRUnlock     // read unlock

	// WaitGroup events.
	EvWgAdd  // Add/Done; Aux = delta
	EvWgWait // Wait completed

	// Condition variable events.
	EvCondWait      // Wait returned
	EvCondSignal    // Signal performed
	EvCondBroadcast // Broadcast performed

	// Once.
	EvOnceDo // Once.Do executed (Aux=1 if this call ran the function)

	// Timer / sleep events.
	EvSleep // timed sleep completed

	// User events (paper: user-annotated regions/tasks).
	EvUserLog // user annotation; Str carries the message

	// Shared-variable accesses (the -race extension).
	EvVarRead  // read of a Shared cell; Res = variable
	EvVarWrite // write of a Shared cell; Res = variable

	// Fault-injection events (the internal/fault layer). Every injected
	// fault is recorded in the ECT so detectors and coverage analyses can
	// distinguish environmental perturbation from program behavior.
	EvFaultStall     // goroutine held unrunnable; Aux = dispatches held
	EvFaultTimerSkew // timer duration skewed; Aux = skew delta (ns)
	EvFaultCancel    // injected context cancellation; Aux = target index
	EvFaultSlow      // channel-op slowdown; Aux = forced yields
	EvFaultPanic     // injected panic about to unwind the goroutine

	evMax
)

// AuxTryOp marks a completed non-blocking channel send (TrySend) in
// EvChanSend.Aux: the operation looks identical to a plain send in every
// other respect, but it could never have parked — a distinction the
// predictive blocking analyses depend on.
const AuxTryOp int64 = 1

// BlockReason says why a goroutine parked (payload of EvGoBlock.Aux).
type BlockReason int64

const (
	BlockNone      BlockReason = iota
	BlockSend                  // blocked sending on a channel
	BlockRecv                  // blocked receiving from a channel
	BlockSelect                // blocked in a select with no ready case
	BlockMutex                 // blocked acquiring a mutex / write lock
	BlockRMutex                // blocked acquiring a read lock
	BlockWaitGroup             // blocked in WaitGroup.Wait
	BlockCond                  // blocked in Cond.Wait
	BlockSleep                 // blocked in a timed sleep
	BlockSync                  // blocked on another sync primitive (Once, semaphore)
	BlockGoatDone              // blocked in the goat watchdog handshake
	BlockFault                 // held unrunnable by an injected stall fault
	BlockNet                   // blocked on network I/O (native traces only)
	BlockSyscall               // blocked in a system call (native traces only)
)

var blockReasonNames = map[BlockReason]string{
	BlockNone:      "none",
	BlockSend:      "chan-send",
	BlockRecv:      "chan-recv",
	BlockSelect:    "select",
	BlockMutex:     "mutex",
	BlockRMutex:    "rwmutex-r",
	BlockWaitGroup: "waitgroup",
	BlockCond:      "cond",
	BlockSleep:     "sleep",
	BlockSync:      "sync",
	BlockGoatDone:  "goat-done",
	BlockFault:     "fault-stall",
	BlockNet:       "net",
	BlockSyscall:   "syscall",
}

// String returns the human-readable block reason.
func (r BlockReason) String() string {
	if s, ok := blockReasonNames[r]; ok {
		return s
	}
	return fmt.Sprintf("BlockReason(%d)", int64(r))
}

var typeNames = [evMax]string{
	EvNone:           "None",
	EvGoCreate:       "GoCreate",
	EvGoStart:        "GoStart",
	EvGoEnd:          "GoEnd",
	EvGoSched:        "GoSched",
	EvGoPreempt:      "GoPreempt",
	EvGoBlock:        "GoBlock",
	EvGoUnblock:      "GoUnblock",
	EvGoPanic:        "GoPanic",
	EvChanMake:       "ChanMake",
	EvChanSend:       "ChanSend",
	EvChanRecv:       "ChanRecv",
	EvChanClose:      "ChanClose",
	EvSelect:         "Select",
	EvSelectCase:     "SelectCase",
	EvMutexLock:      "MutexLock",
	EvMutexUnlock:    "MutexUnlock",
	EvRWLock:         "RWLock",
	EvRWUnlock:       "RWUnlock",
	EvRLock:          "RLock",
	EvRUnlock:        "RUnlock",
	EvWgAdd:          "WgAdd",
	EvWgWait:         "WgWait",
	EvCondWait:       "CondWait",
	EvCondSignal:     "CondSignal",
	EvCondBroadcast:  "CondBroadcast",
	EvOnceDo:         "OnceDo",
	EvSleep:          "Sleep",
	EvUserLog:        "UserLog",
	EvVarRead:        "VarRead",
	EvVarWrite:       "VarWrite",
	EvFaultStall:     "FaultStall",
	EvFaultTimerSkew: "FaultTimerSkew",
	EvFaultCancel:    "FaultCancel",
	EvFaultSlow:      "FaultSlow",
	EvFaultPanic:     "FaultPanic",
}

// String returns the event type name.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a known event type other than EvNone.
func (t Type) Valid() bool { return t > EvNone && t < evMax }

// Category groups event types the way the paper's Table II groups the
// standard tracer vocabulary.
type Category uint8

const (
	CatNone      Category = iota
	CatGoroutine          // goroutine lifecycle
	CatChannel            // channel operations
	CatSync               // mutex / waitgroup / cond / once
	CatSelect             // select statements
	CatTimer              // sleeps and timers
	CatUser               // user annotations
	CatShared             // shared-variable accesses
	CatFault              // injected faults
)

var categoryNames = map[Category]string{
	CatNone:      "None",
	CatGoroutine: "Goroutine",
	CatChannel:   "Channel",
	CatSync:      "Sync",
	CatSelect:    "Select",
	CatTimer:     "Timer",
	CatUser:      "User",
	CatShared:    "Shared",
	CatFault:     "Fault",
}

// String returns the category name.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// CategoryOf returns the category of an event type.
func CategoryOf(t Type) Category {
	switch t {
	case EvGoCreate, EvGoStart, EvGoEnd, EvGoSched, EvGoPreempt, EvGoBlock, EvGoUnblock, EvGoPanic:
		return CatGoroutine
	case EvChanMake, EvChanSend, EvChanRecv, EvChanClose:
		return CatChannel
	case EvMutexLock, EvMutexUnlock, EvRWLock, EvRWUnlock, EvRLock, EvRUnlock,
		EvWgAdd, EvWgWait, EvCondWait, EvCondSignal, EvCondBroadcast, EvOnceDo:
		return CatSync
	case EvSelect, EvSelectCase:
		return CatSelect
	case EvSleep:
		return CatTimer
	case EvUserLog:
		return CatUser
	case EvVarRead, EvVarWrite:
		return CatShared
	case EvFaultStall, EvFaultTimerSkew, EvFaultCancel, EvFaultSlow, EvFaultPanic:
		return CatFault
	default:
		return CatNone
	}
}

// Event is a single entry of an execution concurrency trace. Each event
// corresponds to exactly one statement (concurrency usage) in the source.
type Event struct {
	Ts   int64  // logical timestamp; strictly increasing within a trace
	G    GoID   // goroutine that performed the action
	Type Type   // what happened
	File string // source file of the CU that emitted the event
	Line int    // source line of the CU

	Res     ResID  // resource operated on (0 if none)
	Peer    GoID   // goroutine created or unblocked by this action (0 if none)
	Aux     int64  // type-specific payload (capacity, case index, delta, reason)
	Blocked bool   // the action parked the goroutine before completing
	Str     string // user payload (EvUserLog) or goroutine name (EvGoCreate)
}

// BlockReason returns the reason payload of an EvGoBlock event, or BlockNone.
func (e Event) BlockReason() BlockReason {
	if e.Type == EvGoBlock {
		return BlockReason(e.Aux)
	}
	return BlockNone
}

// Unblocking reports whether the action woke up at least one peer goroutine.
func (e Event) Unblocking() bool { return e.Peer != 0 && e.Type != EvGoCreate }

// String renders the event in the one-line textual trace format.
func (e Event) String() string {
	s := fmt.Sprintf("%6d g%-3d %-13s", e.Ts, e.G, e.Type)
	if e.Res != 0 {
		s += fmt.Sprintf(" r%d", e.Res)
	}
	if e.Peer != 0 {
		s += fmt.Sprintf(" peer=g%d", e.Peer)
	}
	if e.Type == EvGoBlock {
		s += fmt.Sprintf(" reason=%s", BlockReason(e.Aux))
	} else if e.Aux != 0 {
		s += fmt.Sprintf(" aux=%d", e.Aux)
	}
	if e.Blocked {
		s += " [blocked]"
	}
	if e.File != "" {
		s += fmt.Sprintf(" @%s:%d", e.File, e.Line)
	}
	if e.Str != "" {
		s += fmt.Sprintf(" %q", e.Str)
	}
	return s
}
