package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedTraces builds a few representative traces whose encodings seed
// the FuzzECTRoundTrip corpus: empty, a tiny valid schedule, and one
// exercising every field of Event (negative varints, Blocked, Str, Aux).
func fuzzSeedTraces() []*Trace {
	small := New(3)
	small.Append(Event{Ts: 1, G: 1, Type: EvGoCreate, File: "main.go", Line: 10, Peer: 2})
	small.Append(Event{Ts: 2, G: 2, Type: EvGoStart, File: "main.go", Line: 12})
	small.Append(Event{Ts: 3, G: 2, Type: EvChanSend, File: "main.go", Line: 13, Res: 1, Blocked: true})

	wide := New(4)
	wide.Append(Event{Ts: 5, G: 1, Type: EvChanMake, File: "a/b/c.go", Line: 1, Res: 7, Aux: 4})
	wide.Append(Event{Ts: 6, G: 1, Type: EvSelect, File: "a/b/c.go", Line: 2, Aux: -1})
	wide.Append(Event{Ts: 7, G: 1, Type: EvGoBlock, File: "", Line: 0, Aux: int64(BlockSend)})
	wide.Append(Event{Ts: 8, G: 1, Type: EvUserLog, File: "c.go", Line: 3, Str: "hello \x00 world"})

	// A goroutine introduced by its own GoStart (no GoCreate): valid per
	// the introduction contract, exercised by native-trace ingestion.
	window := New(2)
	window.Source = SourceInfo{Name: "native test", Caps: CapSourceLoc}
	window.Append(Event{Ts: 1, G: 9, Type: EvGoStart})
	window.Append(Event{Ts: 2, G: 9, Type: EvGoBlock, Aux: int64(BlockRecv)})

	return []*Trace{New(0), small, wide, window}
}

// fuzzRejectSeeds builds encodings Decode must reject without panicking.
// The partial-goroutine-tree case regressed once: an event by a
// goroutine that never appeared in a GoCreate/GoStart used to decode
// silently into a trace whose tree was missing the goroutine.
func fuzzRejectSeeds() [][]byte {
	orphan := New(2)
	orphan.Append(Event{Ts: 1, G: 1, Type: EvGoCreate, Peer: 2})
	orphan.Append(Event{Ts: 2, G: 3, Type: EvChanSend, Res: 1})
	var buf bytes.Buffer
	if err := orphan.Encode(&buf); err != nil {
		panic(err)
	}
	return [][]byte{buf.Bytes()}
}

// FuzzECTRoundTrip checks the ECT binary codec on arbitrary inputs.
//
// Raw input bytes are NOT required to round-trip byte-identically:
// binary.ReadUvarint accepts non-minimal varint spellings that Encode
// would never produce. The property is instead a canonical fixpoint —
// any input Decode accepts must re-encode to a canonical form that
// decodes to the same events and re-encodes to the same bytes. Inputs
// Decode rejects must fail with an error, never a panic or an
// unbounded allocation.
func FuzzECTRoundTrip(f *testing.F) {
	for _, tr := range fuzzSeedTraces() {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			f.Fatalf("encoding seed trace: %v", err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("NOTATRACE"))
	// Valid magic, implausibly huge event count.
	f.Add(append([]byte(magic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	for _, b := range fuzzRejectSeeds() {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var b1 bytes.Buffer
		if err := tr.Encode(&b1); err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if !reflect.DeepEqual(tr.Events, tr2.Events) {
			t.Fatalf("events changed across canonical round trip:\n%v\nvs\n%v", tr.Events, tr2.Events)
		}
		var b2 bytes.Buffer
		if err := tr2.Encode(&b2); err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("encode is not a fixpoint: %x vs %x", b1.Bytes(), b2.Bytes())
		}
	})
}
