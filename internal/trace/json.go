package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the export shape: stable field names, symbolic type and
// reason strings, omitted zero fields — meant for external tooling
// (jq, timeline viewers), not for round-tripping (use Encode/Decode).
type jsonEvent struct {
	Ts      int64  `json:"ts"`
	G       GoID   `json:"g"`
	Type    string `json:"type"`
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Res     ResID  `json:"res,omitempty"`
	Peer    GoID   `json:"peer,omitempty"`
	Aux     int64  `json:"aux,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Blocked bool   `json:"blocked,omitempty"`
	Str     string `json:"str,omitempty"`
}

// EncodeJSON writes the trace as newline-delimited JSON (one event per
// line), the interchange format for external analysis tools.
func (t *Trace) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i, e := range t.Events {
		je := jsonEvent{
			Ts:      e.Ts,
			G:       e.G,
			Type:    e.Type.String(),
			File:    e.File,
			Line:    e.Line,
			Res:     e.Res,
			Peer:    e.Peer,
			Aux:     e.Aux,
			Blocked: e.Blocked,
			Str:     e.Str,
		}
		if e.Type == EvGoBlock {
			je.Reason = e.BlockReason().String()
			je.Aux = 0
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return nil
}
