package trace

import (
	"fmt"
	"sort"
	"strings"
)

// GoProfile aggregates one goroutine's dynamic behavior.
type GoProfile struct {
	G        GoID
	Name     string
	Events   int
	Blocks   int
	ByReason map[BlockReason]int
	Yields   int // voluntary + injected yields
	Preempts int
	Ended    bool
	Panicked bool
}

// ResProfile aggregates the traffic on one concurrency resource.
type ResProfile struct {
	Res        ResID
	Category   Category
	Ops        int
	Blocks     int          // parks attributed to the resource
	Contenders map[GoID]int // per-goroutine op counts
}

// Profile is the blocking/latency model the paper derives from the
// standard tracer vocabulary: per-goroutine lifecycle and blocking
// statistics plus per-resource contention.
type Profile struct {
	Goroutines map[GoID]*GoProfile
	Resources  map[ResID]*ResProfile
	Total      int // total events
}

// BuildProfile aggregates a trace into its profile.
func BuildProfile(t *Trace) *Profile {
	p := &Profile{
		Goroutines: map[GoID]*GoProfile{},
		Resources:  map[ResID]*ResProfile{},
	}
	gp := func(g GoID) *GoProfile {
		x, ok := p.Goroutines[g]
		if !ok {
			x = &GoProfile{G: g, ByReason: map[BlockReason]int{}}
			p.Goroutines[g] = x
		}
		return x
	}
	rp := func(r ResID, cat Category) *ResProfile {
		x, ok := p.Resources[r]
		if !ok {
			x = &ResProfile{Res: r, Category: cat, Contenders: map[GoID]int{}}
			p.Resources[r] = x
		}
		return x
	}
	for _, e := range t.Events {
		p.Total++
		g := gp(e.G)
		g.Events++
		switch e.Type {
		case EvGoCreate:
			child := gp(e.Peer)
			child.Name = e.Str
		case EvGoBlock:
			g.Blocks++
			g.ByReason[e.BlockReason()]++
			if e.Res != 0 {
				rp(e.Res, CatNone).Blocks++
			}
		case EvGoSched:
			g.Yields++
		case EvGoPreempt:
			g.Preempts++
		case EvGoEnd:
			g.Ended = true
		case EvGoPanic:
			g.Panicked = true
		}
		if e.Res != 0 && CategoryOf(e.Type) != CatGoroutine {
			r := rp(e.Res, CategoryOf(e.Type))
			if r.Category == CatNone {
				r.Category = CategoryOf(e.Type)
			}
			r.Ops++
			r.Contenders[e.G]++
		}
	}
	if main, ok := p.Goroutines[1]; ok && main.Name == "" {
		main.Name = "main"
	}
	return p
}

// HottestResources returns up to n resources ordered by blocks then ops.
func (p *Profile) HottestResources(n int) []*ResProfile {
	out := make([]*ResProfile, 0, len(p.Resources))
	for _, r := range p.Resources {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocks != out[j].Blocks {
			return out[i].Blocks > out[j].Blocks
		}
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].Res < out[j].Res
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MostBlocked returns up to n goroutines ordered by block count.
func (p *Profile) MostBlocked(n int) []*GoProfile {
	out := make([]*GoProfile, 0, len(p.Goroutines))
	for _, g := range p.Goroutines {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Blocks != out[j].Blocks {
			return out[i].Blocks > out[j].Blocks
		}
		return out[i].G < out[j].G
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders the profile in a pprof-like text form.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace profile: %d events, %d goroutines, %d resources\n",
		p.Total, len(p.Goroutines), len(p.Resources))
	b.WriteString("\nmost-blocked goroutines:\n")
	for _, g := range p.MostBlocked(8) {
		fmt.Fprintf(&b, "  g%-4d %-14s events=%-5d blocks=%-4d yields=%-3d preempts=%-3d",
			g.G, g.Name, g.Events, g.Blocks, g.Yields, g.Preempts)
		if len(g.ByReason) > 0 {
			var reasons []string
			for r, n := range g.ByReason {
				reasons = append(reasons, fmt.Sprintf("%s×%d", r, n))
			}
			sort.Strings(reasons)
			fmt.Fprintf(&b, " [%s]", strings.Join(reasons, " "))
		}
		if !g.Ended && !g.Panicked {
			b.WriteString(" (never ended)")
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nhottest resources:\n")
	for _, r := range p.HottestResources(8) {
		fmt.Fprintf(&b, "  r%-4d %-9s ops=%-5d blocks=%-4d contenders=%d\n",
			r.Res, r.Category, r.Ops, r.Blocks, len(r.Contenders))
	}
	return b.String()
}
