package trace

import (
	"strings"
	"testing"
)

func profileTrace() *Trace {
	t := New(16)
	ts := int64(0)
	add := func(e Event) {
		ts++
		e.Ts = ts
		t.Append(e)
	}
	add(Event{G: 1, Type: EvGoStart})
	add(Event{G: 1, Type: EvChanMake, Res: 1})
	add(Event{G: 1, Type: EvGoCreate, Peer: 2, Str: "worker"})
	add(Event{G: 2, Type: EvGoStart})
	add(Event{G: 2, Type: EvGoBlock, Res: 1, Aux: int64(BlockSend)})
	add(Event{G: 1, Type: EvGoUnblock, Peer: 2, Res: 1})
	add(Event{G: 1, Type: EvChanRecv, Res: 1, Peer: 2})
	add(Event{G: 2, Type: EvChanSend, Res: 1, Blocked: true})
	add(Event{G: 2, Type: EvGoSched})
	add(Event{G: 2, Type: EvGoPreempt})
	add(Event{G: 2, Type: EvMutexLock, Res: 2})
	add(Event{G: 2, Type: EvMutexUnlock, Res: 2})
	add(Event{G: 2, Type: EvGoEnd})
	add(Event{G: 1, Type: EvGoEnd})
	return t
}

func TestBuildProfileCounts(t *testing.T) {
	p := BuildProfile(profileTrace())
	if p.Total != 14 {
		t.Fatalf("total = %d", p.Total)
	}
	w := p.Goroutines[2]
	if w == nil || w.Name != "worker" {
		t.Fatalf("worker profile = %+v", w)
	}
	if w.Blocks != 1 || w.ByReason[BlockSend] != 1 {
		t.Fatalf("worker blocks = %d %v", w.Blocks, w.ByReason)
	}
	if w.Yields != 1 || w.Preempts != 1 || !w.Ended {
		t.Fatalf("worker = %+v", w)
	}
	main := p.Goroutines[1]
	if main.Name != "main" || main.Blocks != 0 || !main.Ended {
		t.Fatalf("main = %+v", main)
	}
}

func TestProfileResources(t *testing.T) {
	p := BuildProfile(profileTrace())
	ch := p.Resources[1]
	if ch == nil || ch.Category != CatChannel {
		t.Fatalf("channel profile = %+v", ch)
	}
	if ch.Blocks != 1 {
		t.Fatalf("channel blocks = %d", ch.Blocks)
	}
	if len(ch.Contenders) != 2 {
		t.Fatalf("channel contenders = %v", ch.Contenders)
	}
	mu := p.Resources[2]
	if mu == nil || mu.Category != CatSync || mu.Ops != 2 {
		t.Fatalf("mutex profile = %+v", mu)
	}
}

func TestHottestAndMostBlockedOrdering(t *testing.T) {
	p := BuildProfile(profileTrace())
	hot := p.HottestResources(0)
	if len(hot) != 2 || hot[0].Res != 1 {
		t.Fatalf("hottest = %+v", hot)
	}
	blocked := p.MostBlocked(1)
	if len(blocked) != 1 || blocked[0].G != 2 {
		t.Fatalf("most blocked = %+v", blocked)
	}
}

func TestProfileString(t *testing.T) {
	s := BuildProfile(profileTrace()).String()
	for _, want := range []string{"trace profile", "worker", "chan-send", "hottest resources", "Channel"} {
		if !strings.Contains(s, want) {
			t.Fatalf("profile rendering missing %q:\n%s", want, s)
		}
	}
}

func TestProfileEmptyTrace(t *testing.T) {
	p := BuildProfile(New(0))
	if p.Total != 0 || len(p.Goroutines) != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
	if !strings.Contains(p.String(), "0 events") {
		t.Fatal("rendering broken")
	}
}
