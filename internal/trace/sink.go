package trace

import "sync"

// Sink consumes a stream of ECT events as an execution produces them.
//
// The virtual runtime stamps each event with its logical timestamp before
// delivery, so a sink observes exactly the sequence a buffered *Trace
// would record. Event is called from the scheduler loop (single-threaded
// within one execution); Close is called once, after the world has
// stopped and no further events will arrive.
type Sink interface {
	Event(e Event)
	Close()
}

// Stopper is the optional early-stop side of a sink: an online analysis
// (a streaming detector) reports that its verdict is decided and the
// execution may halt. The scheduler polls StopRequested after each
// delivered event and stops the world at the next dispatch boundary.
type Stopper interface {
	StopRequested() bool
}

// BatchSink is the optional block-delivery side of a sink. A producer
// that buffers emission (sim.Options.SinkBatch) hands whole event blocks
// to sinks implementing it — one interface call per block instead of one
// per event — and falls back to per-event Event calls otherwise. The
// block slice is owned by the producer and reused after the call
// returns; implementations must not retain it. EventBatch(evs) must be
// observably identical to calling Event for each element in order.
type BatchSink interface {
	Sink
	EventBatch(evs []Event)
}

// Unbatched marks a sink that must observe every event the moment it is
// emitted, never a block boundary later. The flight recorder is the
// canonical case: a watchdog snapshots it while a hung run is still in
// flight, so events parked in an emission buffer would be invisible
// exactly when they matter most. Producers deliver to Unbatched sinks
// per event even when batching is on.
type Unbatched interface {
	Unbatched()
}

// Event implements Sink: a *Trace is the canonical buffering sink.
func (t *Trace) Event(e Event) { t.Append(e) }

// EventBatch implements BatchSink.
func (t *Trace) EventBatch(evs []Event) { t.Events = append(t.Events, evs...) }

// Close implements Sink.
func (t *Trace) Close() {}

// Reset truncates the trace in place, keeping the backing array so the
// buffer can be reused by a later execution (see Pool).
func (t *Trace) Reset() { t.Events = t.Events[:0] }

// MultiSink fans one event stream out to several sinks, in order.
type MultiSink []Sink

// NewMultiSink bundles sinks into one fan-out sink.
func NewMultiSink(sinks ...Sink) MultiSink { return MultiSink(sinks) }

// Event implements Sink.
func (m MultiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// EventBatch implements BatchSink, forwarding the block to members that
// take blocks and replaying it per-event to members that do not.
func (m MultiSink) EventBatch(evs []Event) {
	for _, s := range m {
		if bs, ok := s.(BatchSink); ok {
			bs.EventBatch(evs)
			continue
		}
		for i := range evs {
			s.Event(evs[i])
		}
	}
}

// Close implements Sink.
func (m MultiSink) Close() {
	for _, s := range m {
		s.Close()
	}
}

// StopRequested implements Stopper: the fan-out requests a stop as soon
// as any member that supports early-stop does.
func (m MultiSink) StopRequested() bool {
	for _, s := range m {
		if st, ok := s.(Stopper); ok && st.StopRequested() {
			return true
		}
	}
	return false
}

// Pool recycles trace buffers across the executions of a campaign. A
// *Trace drawn from a Pool is the "pooled-buffer sink": attached to one
// execution (as Options.ECT or an extra sink) it records into storage a
// previous execution already grew, so a thousand-run campaign settles
// into zero per-run event allocation after the first few runs. Pools are
// safe for concurrent use by parallel campaign workers.
type Pool struct {
	mu   sync.Mutex
	free []*Trace
	gets int64 // total Get calls
	hits int64 // Gets served from a recycled buffer
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns an empty trace, reusing a recycled buffer when one is
// available.
func (p *Pool) Get() *Trace {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		t.Reset()
		p.hits++
		return t
	}
	return New(1024)
}

// Stats reports the pool's lifetime Get count and how many of those
// reused a recycled buffer (telemetry reads the delta per campaign).
func (p *Pool) Stats() (gets, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits
}

// Put recycles a trace's storage for a future Get. The caller must not
// use t (or slices into its events) afterwards.
func (p *Pool) Put(t *Trace) {
	if t == nil {
		return
	}
	t.Reset()
	p.mu.Lock()
	p.free = append(p.free, t)
	p.mu.Unlock()
}

// RingSink is the flight recorder: a fixed-capacity ring buffer that
// keeps only the most recent events of an execution, for bounded-memory
// observation of arbitrarily long runs. When the ring is full, each new
// event overwrites the oldest one.
type RingSink struct {
	buf     []Event
	next    int // index the next event is written at
	full    bool
	dropped int64 // events overwritten so far
}

// NewRingSink returns a flight recorder holding the last n events
// (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Event implements Sink.
func (r *RingSink) Event(e Event) {
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		if len(r.buf) == cap(r.buf) {
			r.full = true
		}
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.dropped++
}

// Close implements Sink.
func (r *RingSink) Close() {}

// Unbatched implements the trace.Unbatched marker: the recorder's whole
// purpose is observing runs that never finish, so its window must stay
// current with emission, not with block flushes.
func (r *RingSink) Unbatched() {}

// Len returns how many events the recorder currently holds.
func (r *RingSink) Len() int { return len(r.buf) }

// Dropped returns how many events have been overwritten.
func (r *RingSink) Dropped() int64 { return r.dropped }

// Reset empties the recorder so the next event starts a fresh window
// (used between campaign runs sharing one flight recorder).
func (r *RingSink) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.full = false
	r.dropped = 0
}

// Snapshot returns the recorded window as a trace, oldest event first.
// The returned trace is a copy; the recorder keeps running.
func (r *RingSink) Snapshot() *Trace {
	out := New(len(r.buf))
	if r.full && r.next > 0 {
		out.Events = append(out.Events, r.buf[r.next:]...)
		out.Events = append(out.Events, r.buf[:r.next]...)
	} else {
		out.Events = append(out.Events, r.buf...)
	}
	return out
}
