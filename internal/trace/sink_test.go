package trace

import (
	"reflect"
	"testing"
)

func ev(ts int64) Event {
	return Event{Ts: ts, G: 1, Type: EvGoSched}
}

func TestTraceIsASink(t *testing.T) {
	var _ Sink = New(0)
	tr := New(0)
	tr.Event(ev(1))
	tr.Event(ev(2))
	tr.Close()
	if tr.Len() != 2 || tr.Events[1].Ts != 2 {
		t.Fatalf("trace sink recorded %v", tr.Events)
	}
	tr.Reset()
	if tr.Len() != 0 || cap(tr.Events) < 2 {
		t.Fatalf("Reset must truncate in place (len %d, cap %d)", tr.Len(), cap(tr.Events))
	}
}

type recordingSink struct {
	events []Event
	closed int
	stop   bool
}

func (s *recordingSink) Event(e Event)       { s.events = append(s.events, e) }
func (s *recordingSink) Close()              { s.closed++ }
func (s *recordingSink) StopRequested() bool { return s.stop }

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	m := NewMultiSink(a, b)
	m.Event(ev(1))
	m.Event(ev(2))
	m.Close()
	for i, s := range []*recordingSink{a, b} {
		if len(s.events) != 2 || s.closed != 1 {
			t.Fatalf("member %d: %d event(s), %d close(s)", i, len(s.events), s.closed)
		}
	}
	if m.StopRequested() {
		t.Fatal("no member requested a stop")
	}
	b.stop = true
	if !m.StopRequested() {
		t.Fatal("member stop request not propagated")
	}
}

func TestPoolRecyclesBuffers(t *testing.T) {
	p := NewPool()
	first := p.Get()
	for ts := int64(1); ts <= 100; ts++ {
		first.Event(ev(ts))
	}
	p.Put(first)
	got := p.Get()
	if got != first {
		t.Fatal("Get after Put must return the recycled buffer")
	}
	if got.Len() != 0 || cap(got.Events) < 100 {
		t.Fatalf("recycled buffer: len %d, cap %d", got.Len(), cap(got.Events))
	}
	// An exhausted pool hands out fresh traces.
	if other := p.Get(); other == first {
		t.Fatal("pool handed the same buffer out twice")
	}
	p.Put(nil) // must be a no-op
}

func TestRingSinkPartialFill(t *testing.T) {
	r := NewRingSink(4)
	r.Event(ev(1))
	r.Event(ev(2))
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("len %d dropped %d", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	if want := []Event{ev(1), ev(2)}; !reflect.DeepEqual(snap.Events, want) {
		t.Fatalf("snapshot %v, want %v", snap.Events, want)
	}
}

func TestRingSinkWrapsAndKeepsNewest(t *testing.T) {
	r := NewRingSink(4)
	for ts := int64(1); ts <= 10; ts++ {
		r.Event(ev(ts))
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	want := []Event{ev(7), ev(8), ev(9), ev(10)}
	if !reflect.DeepEqual(snap.Events, want) {
		t.Fatalf("snapshot %v, want %v", snap.Events, want)
	}
	// The snapshot is a copy: the recorder keeps running.
	r.Event(ev(11))
	if snap.Len() != 4 || r.Snapshot().Events[3] != ev(11) {
		t.Fatal("snapshot aliased the live ring")
	}
}

func TestRingSinkMinimumCapacity(t *testing.T) {
	r := NewRingSink(0)
	r.Event(ev(1))
	r.Event(ev(2))
	if r.Len() != 1 || r.Snapshot().Events[0] != ev(2) {
		t.Fatalf("ring of capacity 1: %v", r.Snapshot().Events)
	}
}

// TestRingSinkSnapshotChronological pins the wrap-around ordering at
// every fill level: whatever the write cursor's position, Snapshot must
// return the retained window oldest-first with strictly ascending
// timestamps.
func TestRingSinkSnapshotChronological(t *testing.T) {
	for total := int64(1); total <= 13; total++ {
		r := NewRingSink(5)
		for ts := int64(1); ts <= total; ts++ {
			r.Event(ev(ts))
		}
		snap := r.Snapshot()
		want := total - 4 // oldest retained timestamp
		if want < 1 {
			want = 1
		}
		for i, e := range snap.Events {
			if e.Ts != want+int64(i) {
				t.Fatalf("after %d events: snapshot[%d].Ts = %d, want %d (full window: %v)",
					total, i, e.Ts, want+int64(i), snap.Events)
			}
		}
	}
}

func TestRingSinkReset(t *testing.T) {
	r := NewRingSink(3)
	for ts := int64(1); ts <= 7; ts++ {
		r.Event(ev(ts))
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("after Reset: len %d dropped %d", r.Len(), r.Dropped())
	}
	r.Event(ev(8))
	snap := r.Snapshot()
	if snap.Len() != 1 || snap.Events[0] != ev(8) {
		t.Fatalf("ring after Reset: %v", snap.Events)
	}
}

func TestPoolStats(t *testing.T) {
	p := NewPool()
	a := p.Get()
	p.Get()
	if gets, hits := p.Stats(); gets != 2 || hits != 0 {
		t.Fatalf("stats after cold Gets: %d/%d", gets, hits)
	}
	p.Put(a)
	p.Get()
	if gets, hits := p.Stats(); gets != 3 || hits != 1 {
		t.Fatalf("stats after recycled Get: %d/%d", gets, hits)
	}
}
