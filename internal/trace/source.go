package trace

// Event producers. The ECT vocabulary is source-agnostic: an Event means
// the same thing whether the virtual runtime emitted it or a native
// runtime/trace capture was converted into it. What differs between
// producers is the *guarantees* they can make about the stream — whether
// goroutine IDs are dense, whether every concurrency operation is
// visible or only the blocking ones, whether resource identities are
// exact or synthesized by correlation. SourceInfo carries those
// guarantees as a capability bitset so every consumer (detectors, the
// HB engine, the goroutine tree, coverage) can degrade gracefully
// instead of assuming the virtual runtime's full fidelity.

// Caps is a bitset of guarantees an event producer makes about the
// streams it emits. A consumer must not rely on a property whose bit is
// absent.
type Caps uint32

const (
	// CapCreateObserved: every goroutine other than the main goroutine
	// has its EvGoCreate observed before its first own event, so the
	// goroutine tree is complete. Absent, goroutines may enter the
	// stream mid-flight, introduced only by a (possibly synthesized)
	// EvGoStart.
	CapCreateObserved Caps = 1 << iota

	// CapDenseGoIDs: goroutine IDs are assigned densely in creation
	// order starting at 1 (main). Absent, IDs are opaque — stable
	// within one trace but with no cross-trace or ordering meaning.
	CapDenseGoIDs

	// CapExactResIDs: resource IDs identify concrete runtime objects
	// (channels, mutexes, ...) in creation order. Absent, Res values
	// are heuristic correlation buckets — two events with the same Res
	// plausibly touched the same object, two with different Res may
	// still have touched the same one — or 0 when unknowable.
	CapExactResIDs

	// CapOpEvents: every concurrency-primitive operation appears as its
	// own event, including the ones that completed without parking
	// (uncontended sends, immediate lock acquisitions, Unlock, Add).
	// Absent, only operations that *blocked* are visible, so op-census
	// analyses (lock-order graphs, predictive mining, FIFO matching)
	// are unsound and must disable themselves.
	CapOpEvents

	// CapCompleteRun: the trace spans the whole execution, from the
	// first event of main to the settle point the outcome was
	// classified at. Absent, the trace is a window cut from a longer
	// execution: goroutines may pre-exist it, main outliving it is
	// normal, and "blocked at the end" means blocked at the *window*
	// end, not permanently.
	CapCompleteRun

	// CapSourceLoc: File/Line name the source statement (concurrency
	// usage) that performed the operation.
	CapSourceLoc

	// CapFaultEvents: the producer may inject faults and record them as
	// EvFault* events (the internal/fault layer).
	CapFaultEvents

	// CapOpAttribution: the producer can attribute events to scheduler
	// decisions (sim.Result's OpActor/OpEnabled/EventOps side tables).
	// Systematic exploration and DPOR require a *controllable*
	// scheduler, so this capability is inherently virtual-runtime-only.
	CapOpAttribution
)

// Has reports whether every capability in c is present.
func (s SourceInfo) Has(c Caps) bool { return s.Caps&c == c }

// SourceInfo describes one producer of ECT events.
type SourceInfo struct {
	Name string // producer name ("sim", "native go1.23", ...)
	Caps Caps
}

// IsZero reports whether the SourceInfo is unset.
func (s SourceInfo) IsZero() bool { return s.Name == "" && s.Caps == 0 }

// simCaps is the full guarantee set of the virtual runtime.
const simCaps = CapCreateObserved | CapDenseGoIDs | CapExactResIDs |
	CapOpEvents | CapCompleteRun | CapSourceLoc | CapFaultEvents | CapOpAttribution

// SimSource describes the virtual runtime (internal/sim), the producer
// with every guarantee. Traces with a zero Source are assumed to come
// from it: every trace predating source stamping did.
var SimSource = SourceInfo{Name: "sim", Caps: simCaps}

// SourceInfo returns the trace's producer description, defaulting to
// SimSource when the trace was never stamped.
func (t *Trace) SourceInfo() SourceInfo {
	if t.Source.IsZero() {
		return SimSource
	}
	return t.Source
}

// EventSource is the producer contract: one execution's event stream
// together with the guarantees its producer makes. The virtual runtime
// satisfies it live (sim.Scheduler stamps every trace it fills), a
// buffered *Trace satisfies it by replay, and the native ingester
// (internal/ingest) satisfies it for converted runtime/trace captures.
type EventSource interface {
	// SourceInfo describes the producer and its guarantees.
	SourceInfo() SourceInfo
	// Replay delivers the events, in order, to the sink. It does not
	// call Close — the caller owns the sink's lifecycle.
	Replay(s Sink) error
}

// Replay implements EventSource: a buffered trace replays itself.
// Sinks implementing SourceAware learn the producer first, so replay
// through a streaming consumer behaves exactly like live observation
// under the same source.
func (t *Trace) Replay(s Sink) error {
	if sa, ok := s.(SourceAware); ok {
		sa.SetSource(t.SourceInfo())
	}
	for _, e := range t.Events {
		s.Event(e)
	}
	return nil
}

// SourceAware marks sinks that adapt their behavior to the producer's
// declared guarantees (e.g. a detector that disables an analysis whose
// inputs the producer cannot supply). SetSource is called once, before
// the first event. Sinks that never learn a source must assume
// SimSource — the historical behavior.
type SourceAware interface {
	SetSource(SourceInfo)
}

// SetSource implements SourceAware for the fan-out: every member that
// cares learns the producer.
func (m MultiSink) SetSource(src SourceInfo) {
	for _, s := range m {
		if sa, ok := s.(SourceAware); ok {
			sa.SetSource(src)
		}
	}
}
