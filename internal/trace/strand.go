// Shared provenance identity for blocked-goroutine classification.
//
// Both the native-window analysis (internal/ingest) and the streaming
// leak detector (internal/detect) decide whether a parked goroutine is
// a stranded leak or an idle worker, and both report offenders by a
// stable class identity rather than by ephemeral goroutine ID. The
// signature format and the worker-suppression rule live here so the two
// classifiers cannot drift: a leak planted in a simulated service
// kernel and the same leak captured from a native run produce the same
// signature string.
package trace

import (
	"fmt"
	"strings"
)

// StrandSig is the stable identity of a stranded-goroutine class:
// goroutines are ephemeral (IDs differ run to run) but the code paths
// that strand them are not. Two runs — or two detectors — are compared
// signature-wise.
type StrandSig struct {
	Name       string      // root function (or creation name under the simulator)
	Reason     BlockReason // why it is parked
	File       string      // block site
	Line       int
	CreateFile string // go-statement site ("" for orphans / the main goroutine)
	CreateLine int
}

// String renders the canonical signature form
// "name|reason|file:line|createfile:createline" with paths trimmed.
func (s StrandSig) String() string {
	return fmt.Sprintf("%s|%s|%s:%d|%s:%d",
		s.Name, s.Reason, TrimPath(s.File), s.Line, TrimPath(s.CreateFile), s.CreateLine)
}

// TrimPath keeps the last two path components — enough to identify the
// site, stable across checkouts and build machines.
func TrimPath(p string) string {
	if p == "" {
		return ""
	}
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// WorkerShaped reports whether a blocked goroutine matches the
// long-lived-worker pattern: parked on the *consuming* end of a
// rendezvous (receive, select, cond-wait) after having been productive
// (woken at least once in the observation window), or pre-existing the
// window entirely (orphan). Senders are never worker-shaped — a parked
// send means a value nobody is taking, which is a leak whatever the
// goroutine's history.
func WorkerShaped(reason BlockReason, orphan bool, wakes int) bool {
	switch reason {
	case BlockRecv, BlockSelect, BlockCond:
	default:
		return false
	}
	return orphan || wakes > 0
}
