package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Trace is an execution concurrency trace (ECT): the totally ordered
// sequence of events captured from one program execution.
type Trace struct {
	Events []Event

	// Source describes the producer that emitted the events and the
	// guarantees it makes (see SourceInfo). The zero value means the
	// virtual runtime: use SourceInfo() to read it with that default
	// applied.
	Source SourceInfo
}

// New returns an empty trace with room for n events.
func New(n int) *Trace {
	return &Trace{Events: make([]Event, 0, n)}
}

// Append adds an event to the end of the trace.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Validate checks the well-formedness invariants of an ECT:
// timestamps strictly increase, every event has a valid type and a
// goroutine, and every goroutine other than the main goroutine is created
// (EvGoCreate with Peer=g) before its first own event. For sources
// without CapCreateObserved (window traces), a goroutine may instead be
// introduced by its own EvGoStart — goroutines legitimately pre-exist
// such a trace.
func (t *Trace) Validate() error {
	var lastTs int64
	windowed := !t.SourceInfo().Has(CapCreateObserved)
	created := map[GoID]bool{1: true} // main goroutine exists implicitly
	started := map[GoID]bool{}
	for i, e := range t.Events {
		if !e.Type.Valid() {
			return fmt.Errorf("trace: event %d has invalid type %d", i, e.Type)
		}
		if e.G <= 0 {
			return fmt.Errorf("trace: event %d (%s) has no goroutine", i, e.Type)
		}
		if e.Ts <= lastTs {
			return fmt.Errorf("trace: event %d (%s) timestamp %d not after %d", i, e.Type, e.Ts, lastTs)
		}
		lastTs = e.Ts
		if e.Type == EvGoCreate {
			if e.Peer == 0 {
				return fmt.Errorf("trace: event %d GoCreate without child", i)
			}
			if created[e.Peer] {
				return fmt.Errorf("trace: goroutine g%d created twice", e.Peer)
			}
			created[e.Peer] = true
		}
		if windowed && e.Type == EvGoStart {
			created[e.G] = true
		}
		if !created[e.G] {
			return fmt.Errorf("trace: event %d (%s) by g%d before its creation", i, e.Type, e.G)
		}
		if started[e.G] && e.Type == EvGoStart {
			return fmt.Errorf("trace: goroutine g%d started twice", e.G)
		}
		if e.Type == EvGoStart {
			started[e.G] = true
		}
	}
	return nil
}

// Goroutines returns the set of goroutine IDs appearing in the trace,
// sorted ascending.
func (t *Trace) Goroutines() []GoID {
	seen := map[GoID]bool{}
	for _, e := range t.Events {
		seen[e.G] = true
		if e.Type == EvGoCreate {
			seen[e.Peer] = true
		}
	}
	ids := make([]GoID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ByGoroutine returns the per-goroutine projections of the trace, preserving
// the total order within each goroutine. The result is a bare map: ranging
// over it is nondeterministic, so renderers must iterate in Goroutines()
// order instead.
func (t *Trace) ByGoroutine() map[GoID][]Event {
	m := map[GoID][]Event{}
	for _, e := range t.Events {
		m[e.G] = append(m[e.G], e)
	}
	return m
}

// Filter returns a new trace holding only the events for which keep returns
// true, preserving order.
func (t *Trace) Filter(keep func(Event) bool) *Trace {
	out := New(len(t.Events))
	for _, e := range t.Events {
		if keep(e) {
			out.Append(e)
		}
	}
	return out
}

// LastEvent returns the final event of goroutine g and whether g appears in
// the trace at all.
func (t *Trace) LastEvent(g GoID) (Event, bool) {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].G == g {
			return t.Events[i], true
		}
	}
	return Event{}, false
}

// Creator returns the GoCreate event that spawned g, if any.
func (t *Trace) Creator(g GoID) (Event, bool) {
	for _, e := range t.Events {
		if e.Type == EvGoCreate && e.Peer == g {
			return e, true
		}
	}
	return Event{}, false
}

// CountByType tallies events per type.
func (t *Trace) CountByType() map[Type]int {
	m := map[Type]int{}
	for _, e := range t.Events {
		m[e.Type]++
	}
	return m
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrEmpty is returned by operations that need a non-empty trace.
var ErrEmpty = errors.New("trace: empty trace")

// Slice returns the events in [from, to) timestamps as a new trace.
func (t *Trace) Slice(from, to int64) *Trace {
	return t.Filter(func(e Event) bool { return e.Ts >= from && e.Ts < to })
}
