package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := New(8)
	t.Append(Event{Ts: 1, G: 1, Type: EvGoStart})
	t.Append(Event{Ts: 2, G: 1, Type: EvChanMake, Res: 1, Aux: 0, File: "main.go", Line: 10})
	t.Append(Event{Ts: 3, G: 1, Type: EvGoCreate, Peer: 2, File: "main.go", Line: 12, Str: "worker"})
	t.Append(Event{Ts: 4, G: 2, Type: EvGoStart})
	t.Append(Event{Ts: 5, G: 2, Type: EvChanSend, Res: 1, Blocked: true, Peer: 1, File: "main.go", Line: 20})
	t.Append(Event{Ts: 6, G: 1, Type: EvChanRecv, Res: 1, File: "main.go", Line: 13})
	t.Append(Event{Ts: 7, G: 2, Type: EvGoEnd})
	t.Append(Event{Ts: 8, G: 1, Type: EvGoEnd})
	return t
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejectsNonMonotonicTs(t *testing.T) {
	tr := sampleTrace()
	tr.Events[3].Ts = 2
	if err := tr.Validate(); err == nil {
		t.Fatal("non-monotonic timestamps accepted")
	}
}

func TestValidateRejectsUncreatedGoroutine(t *testing.T) {
	tr := New(1)
	tr.Append(Event{Ts: 1, G: 5, Type: EvGoStart})
	if err := tr.Validate(); err == nil {
		t.Fatal("event by uncreated goroutine accepted")
	}
}

func TestValidateRejectsDoubleCreate(t *testing.T) {
	tr := New(2)
	tr.Append(Event{Ts: 1, G: 1, Type: EvGoCreate, Peer: 2})
	tr.Append(Event{Ts: 2, G: 1, Type: EvGoCreate, Peer: 2})
	if err := tr.Validate(); err == nil {
		t.Fatal("double creation accepted")
	}
}

func TestValidateRejectsInvalidType(t *testing.T) {
	tr := New(1)
	tr.Append(Event{Ts: 1, G: 1, Type: evMax})
	if err := tr.Validate(); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestGoroutines(t *testing.T) {
	got := sampleTrace().Goroutines()
	want := []GoID{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Goroutines() = %v, want %v", got, want)
	}
}

func TestByGoroutinePreservesOrder(t *testing.T) {
	m := sampleTrace().ByGoroutine()
	if len(m[1]) != 5 || len(m[2]) != 3 {
		t.Fatalf("projection sizes = %d,%d, want 5,3", len(m[1]), len(m[2]))
	}
	var last int64
	for _, e := range m[1] {
		if e.Ts <= last {
			t.Fatalf("projection order violated at ts %d", e.Ts)
		}
		last = e.Ts
	}
}

func TestLastEventAndCreator(t *testing.T) {
	tr := sampleTrace()
	e, ok := tr.LastEvent(2)
	if !ok || e.Type != EvGoEnd {
		t.Fatalf("LastEvent(2) = %v,%v, want GoEnd", e.Type, ok)
	}
	c, ok := tr.Creator(2)
	if !ok || c.Line != 12 {
		t.Fatalf("Creator(2) = %v,%v, want create at line 12", c, ok)
	}
	if _, ok := tr.Creator(1); ok {
		t.Fatal("main goroutine should have no creator")
	}
	if _, ok := tr.LastEvent(99); ok {
		t.Fatal("unknown goroutine should have no last event")
	}
}

func TestFilterAndSlice(t *testing.T) {
	tr := sampleTrace()
	chans := tr.Filter(func(e Event) bool { return CategoryOf(e.Type) == CatChannel })
	if chans.Len() != 3 {
		t.Fatalf("channel events = %d, want 3", chans.Len())
	}
	mid := tr.Slice(3, 6)
	if mid.Len() != 3 {
		t.Fatalf("Slice(3,6) = %d events, want 3", mid.Len())
	}
}

func TestCountByType(t *testing.T) {
	m := sampleTrace().CountByType()
	if m[EvGoEnd] != 2 || m[EvChanSend] != 1 {
		t.Fatalf("CountByType = %v", m)
	}
}

func TestUnblocking(t *testing.T) {
	e := Event{Type: EvChanSend, Peer: 7}
	if !e.Unblocking() {
		t.Fatal("send with peer should be unblocking")
	}
	e = Event{Type: EvGoCreate, Peer: 7}
	if e.Unblocking() {
		t.Fatal("GoCreate is not an unblocking action")
	}
	e = Event{Type: EvMutexUnlock}
	if e.Unblocking() {
		t.Fatal("unlock with no peer should be NOP")
	}
}

func TestBlockReasonPayload(t *testing.T) {
	e := Event{Type: EvGoBlock, Aux: int64(BlockSelect)}
	if e.BlockReason() != BlockSelect {
		t.Fatalf("BlockReason = %v, want select", e.BlockReason())
	}
	e = Event{Type: EvChanSend, Aux: int64(BlockSelect)}
	if e.BlockReason() != BlockNone {
		t.Fatal("non-block event should report BlockNone")
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := EvGoCreate; ty < evMax; ty++ {
		if strings.HasPrefix(ty.String(), "Type(") {
			t.Fatalf("type %d has no name", ty)
		}
		if CategoryOf(ty) == CatNone {
			t.Fatalf("type %s has no category", ty)
		}
	}
	if EvNone.Valid() || evMax.Valid() {
		t.Fatal("sentinel types must be invalid")
	}
	if !EvChanSend.Valid() {
		t.Fatal("EvChanSend must be valid")
	}
}

func TestEventStringContainsEssentials(t *testing.T) {
	e := Event{Ts: 5, G: 2, Type: EvChanSend, Res: 1, Blocked: true, File: "x.go", Line: 9}
	s := e.String()
	for _, want := range []string{"g2", "ChanSend", "r1", "[blocked]", "x.go:9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got.Events, tr.Events)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// randomEvent builds an arbitrary but encodable event from fuzz inputs.
func randomEvent(r *rand.Rand) Event {
	return Event{
		Ts:      r.Int63(),
		G:       GoID(r.Int63n(1000) + 1),
		Type:    Type(r.Intn(int(evMax)-1) + 1),
		File:    string(rune('a' + r.Intn(26))),
		Line:    r.Intn(10000),
		Res:     ResID(r.Uint64() >> 1),
		Peer:    GoID(r.Int63n(1000)),
		Aux:     r.Int63() - r.Int63(),
		Blocked: r.Intn(2) == 0,
		Str:     strings.Repeat("s", r.Intn(5)),
	}
}

// Property: Encode/Decode is lossless for arbitrary event sequences
// that respect the goroutine-introduction contract (Decode rejects the
// rest by design — see TestDecodeRejectsUnknownGoroutine).
func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(int(n))
		known := []GoID{1}
		for i := 0; i < int(n); i++ {
			e := randomEvent(r)
			switch r.Intn(4) {
			case 0: // introduce a fresh goroutine by GoCreate
				e.Type = EvGoCreate
				e.G = known[r.Intn(len(known))]
				e.Peer = GoID(1000 + len(known))
				known = append(known, e.Peer)
			case 1: // introduce a fresh goroutine by its own GoStart
				e.Type = EvGoStart
				e.G = GoID(1000 + len(known))
				known = append(known, e.G)
			default:
				e.G = known[r.Intn(len(known))]
			}
			tr.Append(e)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Events, tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Filter(p) ∪ Filter(!p) preserves all events and order.
func TestQuickFilterPartition(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(int(n))
		for i := 0; i < int(n); i++ {
			tr.Append(randomEvent(r))
		}
		p := func(e Event) bool { return e.G%2 == 0 }
		a := tr.Filter(p)
		b := tr.Filter(func(e Event) bool { return !p(e) })
		return a.Len()+b.Len() == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != sampleTrace().Len() {
		t.Fatalf("lines = %d, want %d", len(lines), sampleTrace().Len())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["type"] != "GoStart" || first["g"] != float64(1) {
		t.Fatalf("first event = %v", first)
	}
	// Block reasons export symbolically.
	tr := New(1)
	tr.Append(Event{Ts: 1, G: 1, Type: EvGoBlock, Aux: int64(BlockSelect)})
	buf.Reset()
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"reason":"select"`) {
		t.Fatalf("reason not symbolic: %s", buf.String())
	}
}

// ---------------------------------------------------------------------
// Event sources: capability declarations and the codec's source record.

func TestSourceInfoDefaultsToSim(t *testing.T) {
	tr := New(0)
	if got := tr.SourceInfo(); got != SimSource {
		t.Fatalf("unstamped trace source = %+v, want SimSource", got)
	}
	if !tr.SourceInfo().Has(CapOpEvents | CapCompleteRun) {
		t.Fatal("SimSource must carry every capability")
	}
}

func TestValidateWindowSourceIntroducesByGoStart(t *testing.T) {
	tr := New(2)
	tr.Source = SourceInfo{Name: "native test", Caps: CapSourceLoc}
	tr.Append(Event{Ts: 1, G: 5, Type: EvGoStart})
	tr.Append(Event{Ts: 2, G: 5, Type: EvGoBlock, Aux: int64(BlockRecv)})
	if err := tr.Validate(); err != nil {
		t.Fatalf("window trace with GoStart introduction rejected: %v", err)
	}
	// An event by a goroutine with no introduction at all stays invalid
	// even for window sources.
	bad := New(1)
	bad.Source = tr.Source
	bad.Append(Event{Ts: 1, G: 5, Type: EvChanSend})
	if err := bad.Validate(); err == nil {
		t.Fatal("window trace accepted event with no introduction")
	}
}

func TestEncodeDecodeSourceRecord(t *testing.T) {
	tr := New(1)
	tr.Source = SourceInfo{Name: "native go1.23", Caps: CapSourceLoc | CapCreateObserved}
	tr.Append(Event{Ts: 1, G: 1, Type: EvGoEnd})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("GOATECT2")) {
		t.Fatalf("sourced trace not encoded as v2: %q", buf.Bytes()[:8])
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != tr.Source {
		t.Fatalf("source record lost: %+v vs %+v", got.Source, tr.Source)
	}
	// Sim traces keep the original byte format exactly.
	sim := sampleTrace()
	buf.Reset()
	if err := sim.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("GOATECT1")) {
		t.Fatalf("sim trace not encoded as v1: %q", buf.Bytes()[:8])
	}
}

func TestDecodeRejectsUnknownGoroutine(t *testing.T) {
	// g3 never appears in a GoCreate or GoStart: Decode must reject the
	// stream instead of silently building a partial goroutine tree.
	tr := New(2)
	tr.Append(Event{Ts: 1, G: 1, Type: EvGoCreate, Peer: 2})
	tr.Append(Event{Ts: 2, G: 3, Type: EvChanSend, Res: 1})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Decode(&buf)
	if err == nil || !strings.Contains(err.Error(), "never appeared in a GoCreate/GoStart") {
		t.Fatalf("partial-tree stream not rejected clearly: %v", err)
	}
	// The introductions themselves are accepted: created peers and
	// self-starting goroutines.
	ok := New(3)
	ok.Append(Event{Ts: 1, G: 1, Type: EvGoCreate, Peer: 2})
	ok.Append(Event{Ts: 2, G: 3, Type: EvGoStart})
	ok.Append(Event{Ts: 3, G: 2, Type: EvChanRecv, Res: 1})
	buf.Reset()
	if err := ok.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err != nil {
		t.Fatalf("introduced goroutines rejected: %v", err)
	}
}

func TestTraceReplayIsEventSource(t *testing.T) {
	var _ EventSource = (*Trace)(nil)
	tr := sampleTrace()
	out := New(tr.Len())
	if err := tr.Replay(out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Events, tr.Events) {
		t.Fatal("replay did not deliver the identical stream")
	}
}
