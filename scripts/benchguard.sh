#!/bin/sh
# Benchmark-regression guard: run the microbenchmark subset and compare
# against the checked-in baseline. Fails (exit 1) when any benchmark is
# more than the tolerance (default 25%) slower than BENCH_baseline.json.
#
#   scripts/benchguard.sh            # compare against the baseline
#   scripts/benchguard.sh -update    # re-run and rewrite the baseline
#
# The guarded set is the stable microbenchmarks plus the small table
# pipelines and the streaming-vs-buffered campaign cell — not the full
# campaign benchmarks, whose multi-second runtimes would drown the signal
# in runner noise. -benchmem is on so the guard also pins allocs/op,
# which is deterministic and catches a stray per-event allocation even on
# noisy runners.
set -eu
cd "$(dirname "$0")/.."

BENCHES='^(BenchmarkTable1|BenchmarkTable3|BenchmarkSchedulerSpawnJoin|BenchmarkChannelPingPong|BenchmarkSelectTwoReady|BenchmarkDetectGoat|BenchmarkCampaignCellBuffered|BenchmarkCheckpointJournalAppend|BenchmarkCheckpointJournalReplay|BenchmarkCampaignCellStreaming|BenchmarkServiceCell|BenchmarkServiceCellTimeline|BenchmarkTelemetryOverheadOff|BenchmarkTelemetryOverheadOn|BenchmarkHBEngine|BenchmarkPredictMine|BenchmarkSystematicExploreDPOR|BenchmarkIngestParse|BenchmarkProfileBuild)$'
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

go test -run='^$' -bench="$BENCHES" -benchtime=0.2s -benchmem -count=1 . | tee "$OUT"

if [ "${1:-}" = "-update" ]; then
    go run ./cmd/goatbench -compare "$OUT" -update-baseline
else
    go run ./cmd/goatbench -compare "$OUT"
fi
