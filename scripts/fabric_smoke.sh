#!/bin/sh
# Sharded-campaign smoke: run a 5-kernel Table IV campaign through the
# distributed fabric (one coordinator + two worker processes), SIGKILL one
# worker mid-run, and require the merged table to be bit-identical to the
# sequential goatbench run. The checkpoint journal is left in $OUT for
# inspection (CI uploads it as an artifact).
#
#   scripts/fabric_smoke.sh            # OUT defaults to a temp dir
#   FABRIC_SMOKE_OUT=results scripts/fabric_smoke.sh
set -eu
cd "$(dirname "$0")/.."

BUGS='moby_28462,etcd_6873,grpc_660,kubernetes_6632,cockroach_584'
FREQ=2500
SEED=3
ADDR=127.0.0.1:7781
OUT="${FABRIC_SMOKE_OUT:-$(mktemp -d)}"
mkdir -p "$OUT"
echo "fabric smoke: artifacts in $OUT"

go build -o "$OUT/goatd" ./cmd/goatd
go build -o "$OUT/goatbench" ./cmd/goatbench

# Sequential golden.
"$OUT/goatbench" -exp table4 -bugs "$BUGS" -freq "$FREQ" -seed "$SEED" -parallel 1 \
    > "$OUT/sequential.txt"

# Coordinator with a checkpoint journal; short lease TTL so the killed
# worker's cell is reassigned quickly.
"$OUT/goatd" serve -addr "$ADDR" -bugs "$BUGS" -freq "$FREQ" -seed "$SEED" \
    -journal "$OUT/journal.jsonl" -lease-ttl 3s -max-assigns 10 \
    > "$OUT/fabric.txt" 2> "$OUT/coordinator.log" &
COORD=$!

# Wait for the coordinator's listening banner.
i=0
until grep -q 'goatd: serving' "$OUT/coordinator.log" 2>/dev/null || [ $i -ge 50 ]; do
    i=$((i + 1)); sleep 0.2
done

"$OUT/goatd" work -coord "http://$ADDR" -name w1 2> "$OUT/w1.log" &
W1=$!
"$OUT/goatd" work -coord "http://$ADDR" -name w2 2> "$OUT/w2.log" &
W2=$!

# Kill w1 mid-campaign: its leased cell must be reassigned to w2.
sleep 0.5
if kill -9 "$W1" 2>/dev/null; then
    echo "fabric smoke: killed worker w1 mid-run"
else
    echo "fabric smoke: w1 finished before the kill (campaign too fast)"
fi

wait "$COORD"
wait "$W2" 2>/dev/null || true

# The merged Table IV block must match the sequential one bit-for-bit.
awk '/^BugID/,/^detected/' "$OUT/sequential.txt" > "$OUT/sequential_table.txt"
awk '/^BugID/,/^detected/' "$OUT/fabric.txt"     > "$OUT/fabric_table.txt"
if ! diff -u "$OUT/sequential_table.txt" "$OUT/fabric_table.txt"; then
    echo "fabric smoke: FAIL — merged table diverges from the sequential run" >&2
    exit 1
fi

# Both reports must agree that every cell completed healthy.
grep -q 'campaign health: all' "$OUT/fabric.txt" || {
    echo "fabric smoke: FAIL — fabric campaign degraded:" >&2
    grep 'campaign health' "$OUT/fabric.txt" >&2 || true
    exit 1
}

# The journal must replay cleanly: a resumed coordinator sees everything
# done and exits immediately without workers.
"$OUT/goatd" serve -addr "$ADDR" -bugs "$BUGS" -freq "$FREQ" -seed "$SEED" \
    -journal "$OUT/journal.jsonl" > "$OUT/resumed.txt" 2> "$OUT/resume.log"
awk '/^BugID/,/^detected/' "$OUT/resumed.txt" > "$OUT/resumed_table.txt"
if ! diff -u "$OUT/sequential_table.txt" "$OUT/resumed_table.txt"; then
    echo "fabric smoke: FAIL — journal-resumed table diverges" >&2
    exit 1
fi

echo "fabric smoke: PASS — merged and resumed tables are bit-identical to the sequential run"
