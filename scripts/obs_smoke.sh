#!/bin/sh
# Observability-plane smoke: exercise the live endpoint end to end.
#
# Part 1 serves the checked-in leakypool capture via `goattrace -serve`
# and validates every surface: /healthz, /metrics (Prometheus text
# lint), /profile/block + /profile/cpu through `go tool pprof -top`
# (the three planted stranded senders must rank first), and the folded
# flamegraph format. Part 2 runs a live differential campaign with
# -obs and scrapes /metrics mid-flight to prove the endpoint serves
# real counters while a campaign is running.
#
#   scripts/obs_smoke.sh            # OUT defaults to a temp dir
#   OBS_SMOKE_OUT=results scripts/obs_smoke.sh
set -eu
cd "$(dirname "$0")/.."

OUT="${OBS_SMOKE_OUT:-$(mktemp -d)}"
mkdir -p "$OUT"
SERVE_ADDR=127.0.0.1:7791
CAMP_ADDR=127.0.0.1:7792
echo "obs smoke: artifacts in $OUT"

go build -o "$OUT/goattrace" ./cmd/goattrace
go build -o "$OUT/goatfuzz" ./cmd/goatfuzz

# Every non-comment /metrics line must be `name value` with a numeric
# value, names must carry the goat_ prefix, and each histogram's +Inf
# bucket must equal its _count series.
prom_lint() {
    awk '
        /^#/ { next }
        NF != 2 { print "bad line: " $0; bad = 1; next }
        $1 !~ /^goat_[a-zA-Z0-9_:]*(\{[^}]*\})?$/ { print "bad name: " $0; bad = 1 }
        $2 !~ /^-?[0-9]+(\.[0-9]+)?$/ { print "bad value: " $0; bad = 1 }
        /^[a-zA-Z0-9_:]*_bucket\{le="\+Inf"\}/ { sub(/_bucket.*/, "", $1); inf[$1] = $2 }
        /^[a-zA-Z0-9_:]*_count / { sub(/_count$/, "", $1); cnt[$1] = $2 }
        END {
            for (h in inf) if (inf[h] != cnt[h]) { print "bucket/count mismatch: " h; bad = 1 }
            exit bad
        }' "$1"
}

# --- Part 1: static capture served by goattrace -serve -----------------

"$OUT/goattrace" -serve "$SERVE_ADDR" internal/ingest/testdata/leakypool.trace \
    2> "$OUT/serve.log" &
SERVE=$!
i=0
until grep -q 'goattrace: serving' "$OUT/serve.log" 2>/dev/null || [ $i -ge 50 ]; do
    i=$((i + 1)); sleep 0.1
done

curl -fsS "http://$SERVE_ADDR/healthz" | grep -q '^ok$'
curl -fsS "http://$SERVE_ADDR/metrics" > "$OUT/metrics_static.txt"
prom_lint "$OUT/metrics_static.txt"
curl -fsS "http://$SERVE_ADDR/profile/block" -o "$OUT/block.pb.gz"
curl -fsS "http://$SERVE_ADDR/profile/cpu" -o "$OUT/cpu.pb.gz"
curl -fsS "http://$SERVE_ADDR/profile/goroutine?format=folded" -o "$OUT/goroutine.folded"

kill -INT "$SERVE"
wait "$SERVE" 2>/dev/null || true

# The block profile must parse as pprof and rank the planted stranded
# senders first; the CPU profile must attribute the spin loop.
go tool pprof -top -unit ms "$OUT/block.pb.gz" > "$OUT/block_top.txt"
awk '/flat%/ { getline; print; exit }' "$OUT/block_top.txt" \
    | grep -q 'main\.worker\.func1 \[chan-send\]' || {
    echo "obs smoke: FAIL — planted senders not first in block profile:" >&2
    cat "$OUT/block_top.txt" >&2
    exit 1
}
go tool pprof -top "$OUT/cpu.pb.gz" > "$OUT/cpu_top.txt"
grep -q 'main\.burnCPU' "$OUT/cpu_top.txt" || {
    echo "obs smoke: FAIL — CPU spin loop missing from cpu profile" >&2
    exit 1
}
grep -q 'chan-send' "$OUT/goroutine.folded" || {
    echo "obs smoke: FAIL — stranded senders missing from folded census" >&2
    exit 1
}

# --- Part 2: live campaign scraped mid-flight --------------------------

"$OUT/goatfuzz" -n 10000 -seed 1 -obs "$CAMP_ADDR" \
    > "$OUT/campaign.txt" 2> "$OUT/campaign.log" &
CAMP=$!
i=0
until curl -fsS "http://$CAMP_ADDR/metrics" > "$OUT/metrics_live.txt" 2>/dev/null \
        && grep -q '^goat_sim_runs ' "$OUT/metrics_live.txt"; do
    i=$((i + 1))
    if [ $i -ge 100 ]; then
        echo "obs smoke: FAIL — never scraped live campaign metrics" >&2
        kill "$CAMP" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
prom_lint "$OUT/metrics_live.txt"
curl -fsS "http://$CAMP_ADDR/healthz" | grep -q '^ok$'
wait "$CAMP"

echo "obs smoke: PASS — static profiles pprof-clean, live campaign scraped mid-flight"
